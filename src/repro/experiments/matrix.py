"""The scenario matrix: registered workloads x solvers x budget grids.

The figures harness answers "how does algorithm A behave on the workload of
Figure N"; the scenario matrix answers the breadth question the ROADMAP
cares about — *across every registered scenario*, which solver wins where,
and by how much.  One :class:`ScenarioMatrix` run crosses

* workload specs from the :mod:`repro.workloads` registry (``"all"`` or an
  explicit list),
* solvers named by the aliases in :data:`SOLVER_BUILDERS` (thin factories
  over the :mod:`repro.core` solver registry — a workload must supply
  whatever the solver needs, e.g. a linear weight vector for MaxPr/Dep, so
  inapplicable cells are *recorded as skipped with a reason*, never silently
  dropped),
* a budget-fraction grid,

on the traced sweep engine (:func:`~repro.experiments.sweeps.run_budget_sweep`
— incremental solvers are traced once per workload and sliced per budget).
Every cell gets a deterministic seed derived from ``(seed, workload,
solver)``, so the whole matrix is reproducible from one integer.

``max_workers`` (``"auto"`` sizes to the machine) shards the run across a
process pool at the *workload* level: each worker receives a chunk of spec
names plus the run parameters — a few strings and numbers, never a workload
object — and rebuilds its workloads from the registry, so the submissions
stay pickle-light no matter how large ``n`` is.  Chunks are assembled back
in registry order, making the pooled result cell-for-cell identical to the
serial one (same crc32 cell seeds, same solver construction).  ``parallel``
selects the policy: ``"auto"`` (pool when ``max_workers`` asks for it),
``"forced"`` (always pool — errors propagate rather than downgrading), or
``"off"``.

The result is a :class:`MatrixResult`: tidy per-cell rows (objective,
regret against the per-cell winner, win flag), per-solver win-rate/regret
summaries, the skipped cells, and the axis-coverage statement of the
workloads that actually ran.  ``write_json`` / ``write_csv`` persist the
report; the ``matrix`` CLI subcommand (registered here) does both and prints
the summary tables.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.alignment import quadratic_coverage
from repro.core.expected_variance import DecomposedEVCalculator
from repro.core.greedy import (
    GreedyDep,
    GreedyMaxPr,
    GreedyMinVar,
    GreedyNaive,
    GreedyNaiveCostBlind,
    RandomSelector,
)
from repro.core.modular import OptimumModularMinVar
from repro.experiments.parallel import (
    chunk_ranges,
    collect_or_rerun,
    resolve_max_workers,
)
from repro.experiments.persistence import write_rows_csv
from repro.experiments.registry import argument, register_experiment
from repro.experiments.reporting import format_rows
from repro.experiments.sweeps import LinearVarianceObjective, run_budget_sweep
from repro.experiments.workloads import Workload

__all__ = [
    "SOLVER_BUILDERS",
    "MatrixCell",
    "MatrixResult",
    "ScenarioMatrix",
    "CoverageObjective",
    "MeasureEVObjective",
    "cell_seed",
]

# Objective ties closer than this are joint wins.
_WIN_TOLERANCE = 1e-9

DEFAULT_MATRIX_SOLVERS = ("greedy_minvar", "greedy_maxpr", "random")
DEFAULT_MATRIX_BUDGETS = (0.05, 0.1, 0.2)


def cell_seed(base_seed: int, workload: str, solver: str = "") -> int:
    """Deterministic per-cell seed derived from the base seed and cell labels.

    A stable hash (crc32) rather than Python's randomized ``hash``, so the
    same (seed, workload, solver) triple seeds the same RNG stream in every
    process and on every run — the determinism the matrix tests assert.
    """
    token = f"{int(base_seed)}:{workload}:{solver}".encode()
    return int(zlib.crc32(token))


# --------------------------------------------------------------------------- #
# Picklable objectives (the process pool cannot ship closures)
# --------------------------------------------------------------------------- #
class CoverageObjective:
    """Sweep objective for correlated workloads: unclean variance under Sigma.

    The Figure 11 semantics — the variance of ``w . X`` contributed by the
    objects left unclean, computed under the *true* injected covariance —
    shared by every solver swept on a correlated workload, dependency-aware
    or not.  Holds plain arrays, so it pickles into the process pool.
    """

    def __init__(self, weights: Sequence[float], covariance: np.ndarray):
        self.weights = np.asarray(weights, dtype=float)
        self.covariance = np.asarray(covariance, dtype=float)

    def __call__(self, selected: Sequence[int]) -> float:
        chosen = set(selected)
        remaining = [i for i in range(self.weights.size) if i not in chosen]
        return quadratic_coverage(self.weights, self.covariance, remaining)


class MeasureEVObjective:
    """Sweep objective for measure workloads: remaining decomposed EV.

    Wraps one shared :class:`DecomposedEVCalculator`, so every budget
    checkpoint of every solver reads the same memoized term computations.
    (Claim-quality measures close over Python functions, so this objective
    does not pickle — the sweep engine's serial fallback handles it.)
    """

    def __init__(self, calculator: DecomposedEVCalculator):
        self.calculator = calculator

    def __call__(self, selected: Sequence[int]) -> float:
        return self.calculator.expected_variance(selected)


def _workload_objective(workload: Workload) -> Tuple[Callable[[Sequence[int]], float], str]:
    """The evaluation objective for one workload, plus its report label.

    Correlated workloads are scored under their true covariance (Figure 11
    semantics); independent linear workloads use the closed-form linear EV;
    everything else uses the Theorem 3.8 decomposed EV of the measure.
    Lower is better for all three.
    """
    database = workload.database
    linear = workload.linear_function()
    if workload.world_model is not None:
        if linear is None:
            raise ValueError(
                f"workload {workload.name or workload.description!r} has a world model "
                "but no linear query handle to score against it"
            )
        weights = linear.weights(len(database))
        return (
            CoverageObjective(weights, workload.world_model.covariance),
            "unclean variance under true covariance",
        )
    if workload.query_function.is_linear():
        weights = workload.query_function.weights(len(database))
        return LinearVarianceObjective(database, weights), "remaining linear EV"
    calculator = DecomposedEVCalculator(database, workload.query_function)
    return MeasureEVObjective(calculator), "remaining decomposed EV"


# --------------------------------------------------------------------------- #
# Solver aliases
# --------------------------------------------------------------------------- #
def _build_greedy_minvar(workload: Workload, seed: int):
    return GreedyMinVar(workload.query_function), None


def _build_greedy_naive(workload: Workload, seed: int):
    return GreedyNaive(workload.query_function), None


def _build_greedy_naive_cost_blind(workload: Workload, seed: int):
    return GreedyNaiveCostBlind(workload.query_function), None


def _build_random(workload: Workload, seed: int):
    return RandomSelector(np.random.default_rng(seed)), None


def _build_greedy_maxpr(workload: Workload, seed: int, tau: float = 0.0):
    function = workload.linear_function()
    if function is None:
        return None, "no linear query handle for the MaxPr objective"
    database = workload.database
    if database.all_normal() or database.all_discrete():
        # Closed form / convolution paths: deterministic, no sampling needed.
        return GreedyMaxPr(function, tau=tau), None
    return (
        GreedyMaxPr(
            function,
            tau=tau,
            rng=np.random.default_rng(seed),
            monte_carlo_samples=256,
            method="monte_carlo",
        ),
        None,
    )


def _build_greedy_dep(workload: Workload, seed: int):
    if workload.world_model is None:
        return None, "workload has no correlated world model"
    function = workload.linear_function()
    if function is None:
        return None, "no linear query handle for the dependency engine"
    return GreedyDep(function, workload.world_model, conditional=False), None


#: epsilon of the stochastic-greedy aliases: the sample per step is
#: ceil((n/k) ln(1/eps)) candidates and the guarantee (1 - 1/e - eps).
STOCHASTIC_EPSILON = 0.1


def _build_greedy_minvar_stochastic(workload: Workload, seed: int):
    # The per-cell crc32 seed is the *only* entropy source, so matrix runs
    # stay byte-deterministic even with candidate sampling in the loop.
    return (
        GreedyMinVar(
            workload.query_function,
            stochastic_epsilon=STOCHASTIC_EPSILON,
            stochastic_rng=np.random.default_rng(seed),
        ),
        None,
    )


def _build_greedy_dep_stochastic(workload: Workload, seed: int):
    if workload.world_model is None:
        return None, "workload has no correlated world model"
    function = workload.linear_function()
    if function is None:
        return None, "no linear query handle for the dependency engine"
    return (
        GreedyDep(
            function,
            workload.world_model,
            conditional=False,
            stochastic_epsilon=STOCHASTIC_EPSILON,
            stochastic_rng=np.random.default_rng(seed),
        ),
        None,
    )


def _build_optimum(workload: Workload, seed: int):
    if not workload.query_function.is_linear():
        return None, "knapsack Optimum requires a linear query function"
    return OptimumModularMinVar(workload.query_function), None


#: alias -> factory(workload, seed, **options) returning (solver, None) when
#: applicable or (None, reason) when the cell must be skipped.
SOLVER_BUILDERS: Dict[str, Callable] = {
    "greedy_minvar": _build_greedy_minvar,
    "greedy_maxpr": _build_greedy_maxpr,
    "greedy_naive": _build_greedy_naive,
    "greedy_naive_cost_blind": _build_greedy_naive_cost_blind,
    "greedy_dep": _build_greedy_dep,
    "greedy_minvar_stochastic": _build_greedy_minvar_stochastic,
    "greedy_dep_stochastic": _build_greedy_dep_stochastic,
    "random": _build_random,
    "optimum": _build_optimum,
}


# --------------------------------------------------------------------------- #
# Result containers
# --------------------------------------------------------------------------- #
@dataclass
class MatrixCell:
    """One (workload, solver, budget) outcome of a matrix run."""

    workload: str
    solver: str
    budget_fraction: float
    objective: float
    initial_objective: float
    regret: float = 0.0
    relative_regret: float = 0.0
    win: bool = False
    n_selected: int = 0
    cost_spent: float = 0.0
    family: str = ""
    cost_model: str = ""
    correlation: str = ""
    claim_shape: str = ""
    objective_kind: str = ""
    seed: int = 0

    def as_row(self) -> dict:
        """The cell as a flat dict row (CSV/JSON serializable)."""
        return {
            "workload": self.workload,
            "family": self.family,
            "cost_model": self.cost_model,
            "correlation": self.correlation,
            "claim_shape": self.claim_shape,
            "solver": self.solver,
            "budget_fraction": self.budget_fraction,
            "objective": self.objective,
            "initial_objective": self.initial_objective,
            "regret": self.regret,
            "relative_regret": self.relative_regret,
            "win": int(self.win),
            "n_selected": self.n_selected,
            "cost_spent": self.cost_spent,
            "objective_kind": self.objective_kind,
            "seed": self.seed,
        }


CSV_COLUMNS = [
    "workload",
    "family",
    "cost_model",
    "correlation",
    "claim_shape",
    "solver",
    "budget_fraction",
    "objective",
    "initial_objective",
    "regret",
    "relative_regret",
    "win",
    "n_selected",
    "cost_spent",
    "objective_kind",
    "seed",
]


@dataclass
class MatrixResult:
    """Everything a scenario-matrix run produced.

    ``cells`` are the tidy per-(workload, solver, budget) rows with regret
    and win annotations already computed; ``skipped`` records every cell a
    solver factory declined, with its reason; ``coverage`` states the axis
    values the executed workloads span; ``meta`` pins the run parameters
    (workloads, solvers, budgets, n, seed) so an artifact is self-describing.
    """

    meta: Dict[str, object]
    coverage: Dict[str, List[str]]
    cells: List[MatrixCell]
    skipped: List[dict] = field(default_factory=list)
    workload_seconds: Dict[str, float] = field(default_factory=dict)

    def solver_summary(self) -> List[dict]:
        """Per-solver win rate and regret aggregates across all cells."""
        by_solver: Dict[str, List[MatrixCell]] = {}
        for cell in self.cells:
            by_solver.setdefault(cell.solver, []).append(cell)
        rows = []
        for solver, cells in by_solver.items():
            wins = sum(1 for c in cells if c.win)
            rows.append(
                {
                    "solver": solver,
                    "cells": len(cells),
                    "wins": wins,
                    "win_rate": wins / len(cells),
                    "mean_regret": float(np.mean([c.regret for c in cells])),
                    "mean_relative_regret": float(
                        np.mean([c.relative_regret for c in cells])
                    ),
                    "max_relative_regret": float(
                        np.max([c.relative_regret for c in cells])
                    ),
                }
            )
        rows.sort(key=lambda row: -row["win_rate"])
        return rows

    def workload_winners(self) -> List[dict]:
        """Winning solver per (workload, budget fraction)."""
        winners: Dict[Tuple[str, float], MatrixCell] = {}
        for cell in self.cells:
            key = (cell.workload, cell.budget_fraction)
            incumbent = winners.get(key)
            if incumbent is None or cell.objective < incumbent.objective:
                winners[key] = cell
        return [
            {
                "workload": workload,
                "budget_fraction": fraction,
                "winner": cell.solver,
                "objective": cell.objective,
            }
            for (workload, fraction), cell in winners.items()
        ]

    def as_dict(self) -> dict:
        """The full report as one JSON-serializable dict."""
        return {
            "meta": dict(self.meta),
            "coverage": dict(self.coverage),
            "solver_summary": self.solver_summary(),
            "cells": [cell.as_row() for cell in self.cells],
            "skipped": list(self.skipped),
            "workload_seconds": dict(self.workload_seconds),
        }

    def write_json(self, path) -> "Path":
        """Write the full report (meta, coverage, cells, summaries) as JSON."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            json.dump(self.as_dict(), handle, indent=2, default=float)
            handle.write("\n")
        return path

    def write_csv(self, path) -> "Path":
        """Write the tidy per-cell rows as CSV."""
        return write_rows_csv(
            [cell.as_row() for cell in self.cells], path, columns=CSV_COLUMNS
        )


# --------------------------------------------------------------------------- #
# Workload execution (module-level so process-pool shards can run it)
# --------------------------------------------------------------------------- #
def _build_solver_set(
    workload: Workload, solvers: Sequence[str], base_seed: int, tau: float
) -> Tuple[Dict[str, object], List[dict]]:
    built: Dict[str, object] = {}
    skipped: List[dict] = []
    for alias in solvers:
        factory = SOLVER_BUILDERS[alias]
        seed = cell_seed(base_seed, workload.name, alias)
        if alias == "greedy_maxpr":
            solver, reason = factory(workload, seed, tau=tau)
        else:
            solver, reason = factory(workload, seed)
        if solver is None:
            skipped.append(
                {"workload": workload.name, "solver": alias, "reason": reason}
            )
        else:
            built[alias] = solver
    return built, skipped


def _execute_workload(
    name: str,
    n: Optional[int],
    base_seed: int,
    solvers: Sequence[str],
    budget_fractions: Sequence[float],
    tau: float,
    use_traces: bool,
) -> dict:
    """Build and sweep one workload; everything returned is plain data.

    This is the unit a pool shard repeats: the workload is rebuilt from its
    registered spec *inside* the calling process (only the name crosses the
    process boundary), the sweep runs serially (the shards are the
    parallelism — nesting pools would oversubscribe), and the result is a
    dict of :class:`MatrixCell` rows plus bookkeeping, identical whether it
    ran in a worker or inline.
    """
    from repro.workloads import get_workload_spec

    spec = get_workload_spec(name)
    workload = spec.build(n=n, seed=cell_seed(base_seed, name))
    objective, objective_kind = _workload_objective(workload)
    algorithms, skipped = _build_solver_set(workload, solvers, base_seed, tau)
    if not algorithms:
        return {
            "name": name,
            "cells": [],
            "skipped": skipped,
            "seconds": 0.0,
            "executed": False,
        }
    started = time.perf_counter()
    sweep = run_budget_sweep(
        workload.database,
        algorithms,
        objective,
        budget_fractions=budget_fractions,
        description=spec.description,
        use_traces=use_traces,
        parallel="off",
    )
    seconds = time.perf_counter() - started
    initial = float(objective(()))
    costs = workload.database.costs
    cells: List[MatrixCell] = []
    for alias in algorithms:
        values = sweep.series[alias]
        selections = sweep.selections[alias]
        for fraction, value, selection in zip(budget_fractions, values, selections):
            cells.append(
                MatrixCell(
                    workload=name,
                    solver=alias,
                    budget_fraction=float(fraction),
                    objective=float(value),
                    initial_objective=initial,
                    n_selected=len(selection),
                    cost_spent=float(costs[list(selection)].sum())
                    if selection
                    else 0.0,
                    family=spec.family,
                    cost_model=spec.cost_model,
                    correlation=spec.correlation,
                    claim_shape=spec.claim_shape,
                    objective_kind=objective_kind,
                    seed=cell_seed(base_seed, name, alias),
                )
            )
    return {
        "name": name,
        "cells": cells,
        "skipped": skipped,
        "seconds": seconds,
        "executed": True,
    }


def _execute_workload_shard(names: Sequence[str], *config) -> List[dict]:
    """Pool worker: run a chunk of workloads serially, in the given order."""
    return [_execute_workload(name, *config) for name in names]


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #
class ScenarioMatrix:
    """Cross registered workloads x solver aliases x a budget grid.

    ``workloads`` is ``"all"`` or a sequence of registered spec names;
    ``solvers`` is a sequence of :data:`SOLVER_BUILDERS` aliases.  ``n`` and
    ``seed`` parameterize the workload builds (fixed-dataset specs ignore
    ``n``); every (workload, solver) cell seeds its own RNG via
    :func:`cell_seed`.  ``max_workers`` (int or ``"auto"``) shards the
    workloads across a process pool (see the module docstring); ``parallel``
    picks the ``"auto"``/``"forced"``/``"off"`` pool policy; ``tau`` is the
    MaxPr drop threshold.
    """

    def __init__(
        self,
        workloads="all",
        solvers: Sequence[str] = DEFAULT_MATRIX_SOLVERS,
        budget_fractions: Sequence[float] = DEFAULT_MATRIX_BUDGETS,
        n: Optional[int] = 200,
        seed: int = 0,
        tau: float = 0.0,
        max_workers: Union[int, str, None] = None,
        use_traces: bool = True,
        parallel: str = "auto",
    ):
        if parallel not in ("auto", "forced", "off"):
            raise ValueError(
                f"parallel must be 'auto', 'forced' or 'off', got {parallel!r}"
            )
        from repro.workloads import available_workloads

        if isinstance(workloads, str):
            names = (
                list(available_workloads())
                if workloads == "all"
                else [w.strip() for w in workloads.split(",") if w.strip()]
            )
        else:
            names = list(workloads)
        known = available_workloads()
        unknown = [name for name in names if name not in known]
        if unknown:
            raise KeyError(
                f"unknown workload(s) {unknown}; registered: {sorted(known)}"
            )
        unknown_solvers = [s for s in solvers if s not in SOLVER_BUILDERS]
        if unknown_solvers:
            raise KeyError(
                f"unknown solver alias(es) {unknown_solvers}; "
                f"known: {sorted(SOLVER_BUILDERS)}"
            )
        self.workload_names = names
        self.solvers = list(solvers)
        self.budget_fractions = [float(f) for f in budget_fractions]
        self.n = n
        self.seed = int(seed)
        self.tau = float(tau)
        self.max_workers = max_workers
        self.use_traces = use_traces
        self.parallel = parallel

    def _build_solvers(self, workload: Workload) -> Tuple[Dict[str, object], List[dict]]:
        return _build_solver_set(workload, self.solvers, self.seed, self.tau)

    def _worker_config(self) -> tuple:
        """The per-workload parameters shipped to pool shards (plain data only)."""
        return (
            self.n,
            self.seed,
            list(self.solvers),
            list(self.budget_fractions),
            self.tau,
            self.use_traces,
        )

    def _execute_all(self) -> Dict[str, dict]:
        """Run every workload, pooled or serial per the parallel policy."""
        names = self.workload_names
        config = self._worker_config()
        use_pool = self.parallel == "forced" or (
            self.parallel == "auto" and self.max_workers is not None
        )
        if use_pool and names:
            workers = resolve_max_workers(self.max_workers, task_count=len(names))
            if self.parallel == "forced" or workers > 1:
                return self._execute_in_pool(names, config, workers)
        return {name: _execute_workload(name, *config) for name in names}

    @staticmethod
    def _execute_in_pool(
        names: List[str], config: tuple, workers: int
    ) -> Dict[str, dict]:
        """Shard the workload list across a process pool, chunked.

        Submissions carry chunks of spec *names* plus the config tuple —
        pickle-light regardless of workload size.  There is no pickling
        downgrade on this path (the inputs are strings and numbers), but a
        worker that *crashes* degrades its chunk to a serial re-run through
        :func:`~repro.experiments.parallel.collect_or_rerun`, counted as a
        ``pool.pool_to_serial`` degradation.  Real errors raised by a
        workload still propagate.
        """
        chunks = chunk_ranges(len(names), workers)
        outcomes: Dict[str, dict] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            submissions = [
                ([names[i] for i in chunk], pool.submit(
                    _execute_workload_shard, [names[i] for i in chunk], *config
                ))
                for chunk in chunks
            ]
            for chunk_names, future in submissions:
                shard = collect_or_rerun(
                    future,
                    lambda chunk_names=chunk_names: _execute_workload_shard(
                        chunk_names, *config
                    ),
                )
                for outcome in shard:
                    outcomes[outcome["name"]] = outcome
        return outcomes

    def run(self) -> MatrixResult:
        """Execute every cell and return the annotated :class:`MatrixResult`.

        Outcomes are reassembled in the declared workload order whatever the
        pool's completion order was, so pooled and serial runs produce the
        same rows in the same order.
        """
        from repro.workloads import coverage_summary, get_workload_spec

        outcomes = self._execute_all()

        cells: List[MatrixCell] = []
        skipped: List[dict] = []
        workload_seconds: Dict[str, float] = {}
        executed_specs = []
        for name in self.workload_names:
            outcome = outcomes[name]
            skipped.extend(outcome["skipped"])
            if not outcome["executed"]:
                continue
            # Coverage is stated over the workloads that actually produced
            # cells, so a fully-skipped workload cannot inflate the breadth.
            executed_specs.append(get_workload_spec(name))
            workload_seconds[name] = outcome["seconds"]
            cells.extend(outcome["cells"])

        self._annotate_regret(cells)
        meta = {
            "workloads": list(self.workload_names),
            "solvers": list(self.solvers),
            "budget_fractions": list(self.budget_fractions),
            "n": self.n,
            "seed": self.seed,
            "tau": self.tau,
            "max_workers": self.max_workers,
            "parallel": self.parallel,
            "n_cells": len(cells),
            "n_skipped": len(skipped),
        }
        return MatrixResult(
            meta=meta,
            coverage=coverage_summary(executed_specs),
            cells=cells,
            skipped=skipped,
            workload_seconds=workload_seconds,
        )

    @staticmethod
    def _annotate_regret(cells: List[MatrixCell]) -> None:
        """Fill regret / relative regret / win against each cell group's best.

        Relative regret is the fraction of the achievable objective reduction
        the solver missed: ``(objective - best) / (initial - best)`` — 0 for
        the winner, 1 for a solver that achieved nothing the winner did —
        falling back to 0 when no solver moved the objective at all.
        """
        groups: Dict[Tuple[str, float], List[MatrixCell]] = {}
        for cell in cells:
            groups.setdefault((cell.workload, cell.budget_fraction), []).append(cell)
        for group in groups.values():
            best = min(cell.objective for cell in group)
            for cell in group:
                cell.regret = float(cell.objective - best)
                achievable = cell.initial_objective - best
                cell.relative_regret = (
                    float(cell.regret / achievable) if achievable > _WIN_TOLERANCE else 0.0
                )
                cell.win = cell.regret <= _WIN_TOLERANCE


# --------------------------------------------------------------------------- #
# CLI registration
# --------------------------------------------------------------------------- #
def _parse_names(raw: str) -> List[str]:
    return [token.strip() for token in raw.split(",") if token.strip()]


def _parse_workers(raw: str) -> Union[int, str]:
    """Argparse type for --max-workers: an int or the literal 'auto'."""
    if raw.strip().lower() == "auto":
        return "auto"
    return int(raw)


@register_experiment(
    name="matrix",
    description="Scenario matrix: registered workloads x solvers x budgets, with a report",
    arguments=[
        argument(
            "--workloads",
            default="all",
            help="comma-separated registered workload names, or 'all' (default)",
        ),
        argument(
            "--solvers",
            default=",".join(DEFAULT_MATRIX_SOLVERS),
            help="comma-separated solver aliases (default: %(default)s)",
        ),
        argument(
            "--budgets",
            default=",".join(str(f) for f in DEFAULT_MATRIX_BUDGETS),
            help="comma-separated budget fractions (default: %(default)s)",
        ),
        argument("--n", type=int, default=200, help="size for scalable workloads"),
        argument("--seed", type=int, default=0),
        argument("--tau", type=float, default=0.0, help="MaxPr drop threshold"),
        argument(
            "--max-workers",
            type=_parse_workers,
            default=None,
            help="workload-shard pool size: an int or 'auto' to size to the "
            "machine's usable CPUs (default: serial)",
        ),
        argument(
            "--parallel",
            choices=("auto", "forced", "off"),
            default="auto",
            help="pool policy: auto (pool when --max-workers asks), forced "
            "(always pool, never downgrade), off (default: %(default)s)",
        ),
        argument(
            "--out-dir",
            default="reports",
            help="directory for the JSON/CSV report artifacts (default: %(default)s)",
        ),
    ],
)
def _matrix_experiment(args) -> str:
    from pathlib import Path

    matrix = ScenarioMatrix(
        workloads=args.workloads,
        solvers=_parse_names(args.solvers),
        budget_fractions=[float(f) for f in _parse_names(args.budgets)],
        n=args.n,
        seed=args.seed,
        tau=args.tau,
        max_workers=args.max_workers,
        parallel=args.parallel,
    )
    result = matrix.run()
    out_dir = Path(args.out_dir)
    json_path = result.write_json(out_dir / "scenario_matrix.json")
    csv_path = result.write_csv(out_dir / "scenario_matrix.csv")

    coverage_line = "; ".join(
        f"{axis}: {', '.join(values)}" for axis, values in result.coverage.items()
    )
    sections = [
        format_rows(result.solver_summary(), title="Scenario matrix: solver summary"),
        format_rows(
            sorted(
                result.workload_winners(),
                key=lambda row: (row["workload"], row["budget_fraction"]),
            ),
            title="Winner per workload x budget",
        ),
    ]
    if result.skipped:
        sections.append(
            format_rows(result.skipped, title="Skipped cells (solver not applicable)")
        )
    sections.append(
        "\n".join(
            [
                f"coverage — {coverage_line}",
                f"cells: {len(result.cells)}  skipped: {len(result.skipped)}",
                f"wrote {json_path}",
                f"wrote {csv_path}",
            ]
        )
    )
    return "\n\n".join(sections)
