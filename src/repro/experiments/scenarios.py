"""Scenario simulations: "effectiveness in action" and competing objectives.

Section 4.3 evaluates the algorithms from the perspective of a working
fact-checker: a hidden ground-truth world is fixed, each algorithm picks what
to clean, the true values of the cleaned objects are revealed, and we measure
how well the fact-checker can now estimate claim quality (mean / standard
deviation of duplicity) or how quickly a counterargument is actually found.
Section 4.6 compares how the MinVar-optimal and MaxPr-greedy strategies score
on *each other's* objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.claims.quality import ClaimQualityMeasure
from repro.core.expected_variance import DecomposedEVCalculator, measure_mean
from repro.core.problems import budget_from_fraction
from repro.uncertainty.database import UncertainDatabase

__all__ = [
    "measure_moments",
    "InActionResult",
    "run_in_action_experiment",
    "CounterDiscoveryResult",
    "run_counter_discovery",
    "CompetingObjectivesResult",
    "run_competing_objectives",
]


def measure_moments(
    database: UncertainDatabase, measure: ClaimQualityMeasure
) -> Tuple[float, float]:
    """Mean and standard deviation of a claim-quality measure on a database.

    Works on any all-discrete database; cleaned objects are represented by
    point-mass distributions so the same code handles both the prior and the
    post-cleaning state.  The mean sums per-term expectations; the variance is
    the Theorem 3.8 decomposition evaluated with an empty cleaned set.
    """
    calculator = DecomposedEVCalculator(database, measure)
    variance = calculator.expected_variance([])
    mean = measure_mean(database, measure)
    return float(mean), float(np.sqrt(max(variance, 0.0)))


# --------------------------------------------------------------------------- #
# Effectiveness in action (Figures 8 and 9)
# --------------------------------------------------------------------------- #
@dataclass
class InActionResult:
    """Post-cleaning estimates of claim quality for one hidden ground truth."""

    budget_fractions: List[float]
    means: Dict[str, List[float]]
    stds: Dict[str, List[float]]
    true_value: float

    def as_rows(self) -> List[dict]:
        """Tidy rows (one per algorithm x budget) for reporting."""
        rows = []
        for algorithm in self.means:
            for fraction, mean, std in zip(
                self.budget_fractions, self.means[algorithm], self.stds[algorithm]
            ):
                rows.append(
                    {
                        "algorithm": algorithm,
                        "budget_fraction": fraction,
                        "estimated_mean": mean,
                        "estimated_std": std,
                        "true_value": self.true_value,
                    }
                )
        return rows


def run_in_action_experiment(
    database: UncertainDatabase,
    measure: ClaimQualityMeasure,
    algorithms: Mapping[str, object],
    budget_fractions: Sequence[float],
    seed: int = 0,
    ground_truth: Optional[Sequence[float]] = None,
) -> InActionResult:
    """Simulate a fact-checker cleaning data and re-estimating claim quality.

    A single ground-truth world is drawn (or supplied); for every budget each
    algorithm selects objects using only the prior distributions, the true
    values of the selected objects are revealed, and the mean / standard
    deviation of the measure under the remaining uncertainty is recorded.
    """
    rng = np.random.default_rng(seed)
    truth = (
        np.asarray(ground_truth, dtype=float)
        if ground_truth is not None
        else database.sample_world(rng)
    )
    true_value = float(measure.evaluate(truth))

    fractions = [float(f) for f in budget_fractions]
    means: Dict[str, List[float]] = {name: [] for name in algorithms}
    stds: Dict[str, List[float]] = {name: [] for name in algorithms}

    for fraction in fractions:
        budget = budget_from_fraction(database, fraction)
        for name, algorithm in algorithms.items():
            selected = algorithm.select_indices(database, budget)
            revealed = {int(i): float(truth[int(i)]) for i in selected}
            cleaned_database = database.cleaned(revealed)
            mean, std = measure_moments(cleaned_database, measure)
            means[name].append(mean)
            stds[name].append(std)
    return InActionResult(
        budget_fractions=fractions, means=means, stds=stds, true_value=true_value
    )


# --------------------------------------------------------------------------- #
# Counterargument discovery (Section 4.3, "Finding counters")
# --------------------------------------------------------------------------- #
@dataclass
class CounterDiscoveryResult:
    """How much budget each algorithm needed before a counter was revealed."""

    budget_fraction_used: Dict[str, Optional[float]]
    values_cleaned: Dict[str, Optional[int]]
    counter_exists_in_truth: bool

    def as_rows(self) -> List[dict]:
        """Tidy rows (one per algorithm) for reporting."""
        return [
            {
                "algorithm": name,
                "budget_fraction_used": self.budget_fraction_used[name],
                "values_cleaned": self.values_cleaned[name],
                "counter_exists_in_truth": self.counter_exists_in_truth,
            }
            for name in self.budget_fraction_used
        ]


def run_counter_discovery(
    database: UncertainDatabase,
    counter_found: Callable[[np.ndarray], bool],
    algorithms: Mapping[str, object],
    ground_truth: Sequence[float],
    max_budget_fraction: float = 1.0,
) -> CounterDiscoveryResult:
    """Follow each algorithm's cleaning order until a counterargument appears.

    ``counter_found(values)`` decides whether the database state ``values``
    (revealed true values for cleaned objects, current values elsewhere)
    exhibits a counterargument to the original claim.  For each algorithm we
    walk its selection order at the maximum budget, revealing one value at a
    time, and record the first cost fraction at which a counter is visible.
    """
    truth = np.asarray(ground_truth, dtype=float)
    total_cost = database.total_cost
    exists = bool(counter_found(truth))

    fraction_used: Dict[str, Optional[float]] = {}
    cleaned_count: Dict[str, Optional[int]] = {}
    for name, algorithm in algorithms.items():
        budget = budget_from_fraction(database, max_budget_fraction)
        order = algorithm.select_indices(database, budget)
        values = np.array(database.current_values, copy=True)
        spent = 0.0
        found_at: Optional[float] = None
        found_count: Optional[int] = None
        for position, index in enumerate(order, start=1):
            values[index] = truth[index]
            spent += database[index].cost
            if counter_found(values):
                found_at = spent / total_cost
                found_count = position
                break
        fraction_used[name] = found_at
        cleaned_count[name] = found_count
    return CounterDiscoveryResult(
        budget_fraction_used=fraction_used,
        values_cleaned=cleaned_count,
        counter_exists_in_truth=exists,
    )


# --------------------------------------------------------------------------- #
# Competing objectives (Section 4.6, Figure 12)
# --------------------------------------------------------------------------- #
@dataclass
class CompetingObjectivesResult:
    """Both algorithms scored on both objectives across budgets."""

    budget_fractions: List[float]
    expected_variance: Dict[str, List[float]]
    counter_probability: Dict[str, List[float]]

    def as_rows(self) -> List[dict]:
        """Tidy rows (one per algorithm x budget x objective) for reporting."""
        rows = []
        for algorithm in self.expected_variance:
            for fraction, variance, probability in zip(
                self.budget_fractions,
                self.expected_variance[algorithm],
                self.counter_probability[algorithm],
            ):
                rows.append(
                    {
                        "algorithm": algorithm,
                        "budget_fraction": fraction,
                        "expected_variance": variance,
                        "counter_probability": probability,
                    }
                )
        return rows


def run_competing_objectives(
    database: UncertainDatabase,
    minvar_algorithm,
    maxpr_algorithm,
    evaluate_variance: Callable[[Sequence[int]], float],
    evaluate_probability: Callable[[Sequence[int]], float],
    budget_fractions: Sequence[float],
) -> CompetingObjectivesResult:
    """Score the MinVar-oriented and MaxPr-oriented strategies on both objectives."""
    fractions = [float(f) for f in budget_fractions]
    algorithms = {"MinVar": minvar_algorithm, "MaxPr": maxpr_algorithm}
    expected_variance: Dict[str, List[float]] = {name: [] for name in algorithms}
    counter_probability: Dict[str, List[float]] = {name: [] for name in algorithms}
    for fraction in fractions:
        budget = budget_from_fraction(database, fraction)
        for name, algorithm in algorithms.items():
            selected = algorithm.select_indices(database, budget)
            expected_variance[name].append(float(evaluate_variance(selected)))
            counter_probability[name].append(float(evaluate_probability(selected)))
    return CompetingObjectivesResult(
        budget_fractions=fractions,
        expected_variance=expected_variance,
        counter_probability=counter_probability,
    )
