"""Plain-text rendering of experiment series.

The benchmark harness prints the same rows the paper plots; these helpers
keep that output readable without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_series_table", "format_rows"]


def format_series_table(
    budget_fractions: Sequence[float],
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.6g}",
    title: str = "",
) -> str:
    """Render a budget-by-algorithm table as aligned plain text."""
    algorithms = list(series)
    header = ["budget"] + algorithms
    rows: List[List[str]] = []
    for i, fraction in enumerate(budget_fractions):
        row = [f"{fraction:.2f}"]
        for name in algorithms:
            row.append(value_format.format(series[name][i]))
        rows.append(row)

    widths = [max(len(header[c]), max((len(r[c]) for r in rows), default=0)) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_rows(rows: Sequence[dict], columns: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return title or "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0])
    formatted = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(columns[c]), max(len(r[c]) for r in formatted)) for c in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.rjust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
