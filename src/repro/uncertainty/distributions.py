"""Value distributions for uncertain objects.

The paper assumes each object's true value is a random variable with a known
distribution.  Two families cover everything the evaluation uses:

* finite discrete distributions (:class:`DiscreteDistribution`) -- the general
  case used by the synthetic URx/LNx/SMx workloads and by the exact
  expected-variance computations, and
* normal error models (:class:`NormalSpec`) -- the CDC/Adoptions datasets, the
  modular MaxPr results (Lemma 3.3) and the multivariate-normal alignment
  result (Theorem 3.9).  Normals are discretized with :func:`discretize_normal`
  when an algorithm needs a finite support (as the paper does in Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro import kernels

__all__ = [
    "DiscreteDistribution",
    "NormalSpec",
    "discretize_normal",
    "convolve_support",
]


def convolve_support(
    values: np.ndarray,
    probabilities: np.ndarray,
    contributions: np.ndarray,
    contribution_probabilities: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One array-convolution step: add an independent term to a discrete pmf.

    Forms the outer sum of the accumulated support ``values`` with the new
    term's ``contributions``, multiplies the probabilities, and merges equal
    sums.  Returns the merged ``(values, probabilities)`` with values sorted
    ascending.  This is the shared kernel behind the weighted-sum pmf of the
    expected-variance path and the drop-distribution convolution of the
    MaxPr path; the implementation is tier-dispatched (``np.unique`` +
    ``np.bincount`` on the numpy tier, a sort-and-merge loop on the compiled
    tier — identical merge semantics, values equal under ``==`` collapse).
    """
    values = np.ascontiguousarray(values, dtype=float)
    probabilities = np.ascontiguousarray(probabilities, dtype=float)
    contributions = np.ascontiguousarray(contributions, dtype=float)
    contribution_probabilities = np.ascontiguousarray(
        contribution_probabilities, dtype=float
    )
    return kernels.convolve_support(
        values, probabilities, contributions, contribution_probabilities
    )

_PROBABILITY_TOLERANCE = 1e-9


class DiscreteDistribution:
    """A finite-support probability distribution over real values.

    Parameters
    ----------
    values:
        Support points.  Duplicates are merged (their probabilities added).
    probabilities:
        Nonnegative weights, one per value.  They are normalized to sum to 1.

    The distribution is immutable after construction; all derived quantities
    (mean, variance) are cached.
    """

    __slots__ = ("_values", "_probabilities", "_mean", "_variance")

    def __init__(self, values: Sequence[float], probabilities: Sequence[float]):
        values = np.asarray(values, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        if values.ndim != 1 or probabilities.ndim != 1:
            raise ValueError("values and probabilities must be one-dimensional")
        if values.shape != probabilities.shape:
            raise ValueError(
                f"values ({values.shape}) and probabilities ({probabilities.shape}) "
                "must have the same length"
            )
        if values.size == 0:
            raise ValueError("a distribution needs at least one support point")
        if np.any(probabilities < -_PROBABILITY_TOLERANCE):
            raise ValueError("probabilities must be nonnegative")
        probabilities = np.clip(probabilities, 0.0, None)
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        probabilities = probabilities / total

        # Merge duplicate support points so the support is a proper set.
        order = np.argsort(values, kind="stable")
        values = values[order]
        probabilities = probabilities[order]
        merged_values = []
        merged_probs = []
        for v, p in zip(values, probabilities):
            if merged_values and math.isclose(v, merged_values[-1], rel_tol=0.0, abs_tol=1e-12):
                merged_probs[-1] += p
            else:
                merged_values.append(float(v))
                merged_probs.append(float(p))
        self._values = np.array(merged_values, dtype=float)
        self._probabilities = np.array(merged_probs, dtype=float)
        self._mean = float(np.dot(self._values, self._probabilities))
        second_moment = float(np.dot(self._values**2, self._probabilities))
        self._variance = max(second_moment - self._mean**2, 0.0)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def point_mass(cls, value: float) -> "DiscreteDistribution":
        """Distribution concentrated on a single value (a cleaned object)."""
        return cls([value], [1.0])

    @classmethod
    def uniform(cls, values: Sequence[float]) -> "DiscreteDistribution":
        """Uniform distribution over the given support points."""
        values = list(values)
        return cls(values, [1.0] * len(values))

    @classmethod
    def bernoulli(cls, p: float) -> "DiscreteDistribution":
        """Bernoulli distribution on {0, 1} with success probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        return cls([0.0, 1.0], [1.0 - p, p])

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """Support points, sorted ascending."""
        return self._values

    @property
    def probabilities(self) -> np.ndarray:
        """Probabilities aligned with :attr:`values`."""
        return self._probabilities

    @property
    def support_size(self) -> int:
        """Number of support values."""
        return int(self._values.size)

    @property
    def mean(self) -> float:
        """Mean of the distribution."""
        return self._mean

    @property
    def variance(self) -> float:
        """Variance of the distribution."""
        return self._variance

    @property
    def std(self) -> float:
        """Standard deviation of the distribution."""
        return math.sqrt(self._variance)

    def is_certain(self) -> bool:
        """True when the distribution is a point mass (no uncertainty left)."""
        return self.support_size == 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def pmf(self, value: float) -> float:
        """Probability mass assigned to ``value`` (0 if not in support)."""
        idx = np.flatnonzero(np.isclose(self._values, value, rtol=0.0, atol=1e-12))
        if idx.size == 0:
            return 0.0
        return float(self._probabilities[idx[0]])

    def cdf(self, value: float) -> float:
        """Probability of drawing a value ``<= value``."""
        return float(self._probabilities[self._values <= value + 1e-12].sum())

    def prob_less_than(self, threshold: float) -> float:
        """Probability of drawing a value strictly below ``threshold``."""
        return float(self._probabilities[self._values < threshold - 1e-12].sum())

    def expectation_of(self, func) -> float:
        """Expected value of ``func`` applied to a draw from the distribution."""
        return float(sum(p * func(v) for v, p in zip(self._values, self._probabilities)))

    def variance_of(self, func) -> float:
        """Variance of ``func`` applied to a draw from the distribution."""
        first = 0.0
        second = 0.0
        for v, p in zip(self._values, self._probabilities):
            fv = func(v)
            first += p * fv
            second += p * fv * fv
        return max(second - first * first, 0.0)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw samples using ``rng``; returns a scalar when ``size`` is None."""
        draws = rng.choice(self._values, size=size, p=self._probabilities)
        if size is None:
            return float(draws)
        return draws

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __iter__(self):
        return iter(zip(self._values, self._probabilities))

    def __len__(self) -> int:
        return self.support_size

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v:g}:{p:.3f}" for v, p in self)
        return f"DiscreteDistribution({pairs})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return (
            self.support_size == other.support_size
            and np.allclose(self._values, other._values)
            and np.allclose(self._probabilities, other._probabilities)
        )

    def __hash__(self):
        return hash((tuple(np.round(self._values, 12)), tuple(np.round(self._probabilities, 12))))


@dataclass(frozen=True)
class NormalSpec:
    """A normal error model ``X ~ N(mean, std**2)``.

    This is the error model of the Adoptions and CDC datasets and the setting
    of Lemma 3.3 / Theorem 3.9.  ``discretize`` converts it to a
    :class:`DiscreteDistribution` when an algorithm needs a finite support.
    """

    mean: float
    std: float

    def __post_init__(self):
        if self.std < 0:
            raise ValueError("standard deviation must be nonnegative")

    @property
    def variance(self) -> float:
        """Variance ``std**2`` of the normal model."""
        return self.std**2

    def prob_less_than(self, threshold: float) -> float:
        """``Pr[X < threshold]`` under the normal model."""
        if self.std == 0:
            return 1.0 if self.mean < threshold else 0.0
        return float(stats.norm.cdf(threshold, loc=self.mean, scale=self.std))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one value (or ``size`` values) from the normal model."""
        draws = rng.normal(self.mean, self.std, size=size)
        if size is None:
            return float(draws)
        return draws

    def discretize(self, points: int = 6, method: str = "quantile") -> DiscreteDistribution:
        """Discretize to ``points`` support values; see :func:`discretize_normal`."""
        return discretize_normal(self.mean, self.std, points=points, method=method)


def discretize_normal(
    mean: float,
    std: float,
    points: int = 6,
    method: str = "quantile",
) -> DiscreteDistribution:
    """Discretize ``N(mean, std**2)`` onto ``points`` support values.

    Two methods are provided:

    * ``"quantile"`` (default, what Section 4.2 of the paper does for the CDC
      datasets): split the distribution into ``points`` equal-probability
      intervals and place one equally-weighted support point at the
      conditional mean of each interval.  This preserves the mean exactly and
      the variance closely.
    * ``"grid"``: place support points on an evenly spaced grid covering
      ``mean +/- 3 std`` and weight them by the normal density.

    A zero standard deviation yields a point mass at ``mean``.
    """
    if points < 1:
        raise ValueError("points must be >= 1")
    if std <= 0:
        return DiscreteDistribution.point_mass(mean)

    if method == "quantile":
        edges = stats.norm.ppf(np.linspace(0.0, 1.0, points + 1), loc=mean, scale=std)
        values = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            # Conditional mean of a normal restricted to (lo, hi).
            a, b = (lo - mean) / std, (hi - mean) / std
            denom = stats.norm.cdf(b) - stats.norm.cdf(a)
            if denom <= 0:
                values.append(mean)
            else:
                values.append(mean + std * (stats.norm.pdf(a) - stats.norm.pdf(b)) / denom)
        return DiscreteDistribution(values, [1.0 / points] * points)

    if method == "grid":
        grid = np.linspace(mean - 3.0 * std, mean + 3.0 * std, points)
        density = stats.norm.pdf(grid, loc=mean, scale=std)
        return DiscreteDistribution(grid, density)

    raise ValueError(f"unknown discretization method: {method!r}")
