"""Uncertain objects: the unit of cleaning.

An :class:`UncertainObject` is the paper's ``o_i``: a named quantity with a
current (reported, possibly erroneous) value ``u_i``, a distribution for its
true value ``X_i``, and a cleaning cost ``c_i``.  Cleaning the object reveals a
draw from the distribution and removes its uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.uncertainty.distributions import DiscreteDistribution, NormalSpec

__all__ = ["UncertainObject"]

Distribution = Union[DiscreteDistribution, NormalSpec]


@dataclass(frozen=True)
class UncertainObject:
    """A single uncertain data value.

    Parameters
    ----------
    name:
        Stable identifier (e.g. ``"adoptions_1993"`` or ``"firearms_2005"``).
    current_value:
        The value currently recorded in the database, ``u_i``.
    distribution:
        The distribution of the true value ``X_i`` — either a
        :class:`DiscreteDistribution` or a :class:`NormalSpec`.
    cost:
        The cost of cleaning the object, ``c_i`` (must be positive).
    label:
        Optional human-readable description.
    """

    name: str
    current_value: float
    distribution: Distribution
    cost: float = 1.0
    label: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("an uncertain object needs a non-empty name")
        if self.cost <= 0:
            raise ValueError(f"cleaning cost must be positive, got {self.cost}")
        if not isinstance(self.distribution, (DiscreteDistribution, NormalSpec)):
            raise TypeError(
                "distribution must be a DiscreteDistribution or NormalSpec, "
                f"got {type(self.distribution).__name__}"
            )

    # ------------------------------------------------------------------ #
    # Distribution shortcuts
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """Mean of the true-value distribution."""
        return self.distribution.mean

    @property
    def variance(self) -> float:
        """Variance of the true-value distribution."""
        return self.distribution.variance

    @property
    def std(self) -> float:
        """Standard deviation of the true-value distribution."""
        return float(np.sqrt(self.variance))

    @property
    def is_normal(self) -> bool:
        """True when the error model is a (continuous) normal."""
        return isinstance(self.distribution, NormalSpec)

    def is_certain(self) -> bool:
        """True when there is no uncertainty left in the value."""
        if isinstance(self.distribution, DiscreteDistribution):
            return self.distribution.is_certain()
        return self.distribution.std == 0.0

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def discretized(self, points: int = 6, method: str = "quantile") -> "UncertainObject":
        """Return a copy whose distribution is a finite discretization.

        Discrete objects are returned unchanged.  This mirrors the paper's
        Section 4.2 treatment of the CDC normal error models.
        """
        if isinstance(self.distribution, DiscreteDistribution):
            return self
        return replace(self, distribution=self.distribution.discretize(points=points, method=method))

    def cleaned(self, revealed_value: float) -> "UncertainObject":
        """Return a copy representing the object after cleaning.

        The revealed value becomes both the current value and a point-mass
        distribution, so downstream computations see no remaining uncertainty.
        """
        return replace(
            self,
            current_value=float(revealed_value),
            distribution=DiscreteDistribution.point_mass(float(revealed_value)),
        )

    def with_cost(self, cost: float) -> "UncertainObject":
        """Return a copy with a different cleaning cost."""
        return replace(self, cost=float(cost))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw possible true values; a scalar when ``size`` is None.

        With ``size`` the draw is a single vectorized call into the
        distribution, which is what the batched world sampling and the
        Monte-Carlo kernels use to avoid per-sample Python overhead.
        """
        return self.distribution.sample(rng, size=size)

    def __repr__(self) -> str:
        kind = "normal" if self.is_normal else f"discrete[{self.distribution.support_size}]"
        return (
            f"UncertainObject(name={self.name!r}, u={self.current_value:g}, "
            f"dist={kind}, cost={self.cost:g})"
        )
