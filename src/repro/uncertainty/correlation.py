"""Correlated (multivariate normal) world models.

The paper's theoretical guarantees mostly assume independent errors, but
Section 4.5 evaluates what happens when errors are correlated: a covariance
matrix with entries ``gamma**|j-i| * sigma_i * sigma_j`` is injected into the
CDC-firearms dataset, and dependency-aware algorithms (``GreedyDep``, the
brute-force ``OPT``) exploit it.  Theorem 3.9 also needs the general
multivariate normal machinery (conditional covariance via the Schur
complement).  This module provides that machinery in two flavours:

* the *scratch* kernels — :func:`conditional_covariance` and the scalar
  :meth:`GaussianWorldModel.post_cleaning_variance` /
  :meth:`GaussianWorldModel.surprise_probability` — which rebuild the Schur
  complement with a pseudo-inverse on every call (the reference twins);
* the *incremental* engine — :class:`ConditionalGaussian` — which maintains
  the conditional covariance ``Sigma|S`` under rank-one downdates, so
  conditioning on one more cleaned object costs O(n^2) and the marginal
  variance reduction of **every** remaining candidate is a single vectorized
  expression, ``gains = (Sigma|S w)^2 / diag(Sigma|S)``.

The identity behind the engine: for a multivariate normal, conditioning on
component ``j`` maps ``Sigma|S`` to ``Sigma|S - s_j s_j^T / Sigma_jj|S``
where ``s_j`` is column ``j`` of ``Sigma|S``.  Expanding the quadratic form
``w^T Sigma|S w`` under that downdate shows the variance removed by cleaning
``j`` is exactly ``(Sigma|S w)_j^2 / Sigma_jj|S`` — one matvec scores every
candidate at once, which is what turns GreedyDep from one Schur complement
per candidate per step into one O(n^2) pass per step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro import kernels
from repro.uncertainty.database import UncertainDatabase

if TYPE_CHECKING:  # circular-import-free type reference only
    from repro.uncertainty.structured import StructuredCovariance

__all__ = [
    "decaying_covariance",
    "block_covariance",
    "banded_covariance",
    "conditional_covariance",
    "ConditionalGaussian",
    "GaussianWorldModel",
]


def decaying_covariance(stds: Sequence[float], gamma: float) -> np.ndarray:
    """Covariance matrix with geometrically decaying cross-correlations.

    ``Cov[X_i, X_j] = gamma**|j-i| * sigma_i * sigma_j`` — the dependency
    injection model of Section 4.5.  ``gamma = 0`` recovers independence and
    ``gamma`` close to 1 makes neighbouring years strongly dependent.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    stds = np.asarray(stds, dtype=float)
    if np.any(stds < 0):
        raise ValueError("standard deviations must be nonnegative")
    n = stds.size
    lags = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    decay = np.where(lags == 0, 1.0, gamma**lags)
    return decay * np.outer(stds, stds)


def block_covariance(
    stds: Sequence[float], block_size: int, rho: float
) -> np.ndarray:
    """Covariance with constant correlation ``rho`` inside consecutive blocks.

    Objects are grouped into consecutive blocks of ``block_size`` (the last
    block may be shorter); within a block every pair has correlation ``rho``,
    across blocks the errors are independent.  This models batched acquisition
    (one source per block, e.g. one agency reporting several years at once).
    Positive semi-definite for every ``rho`` in ``[0, 1]``: each block is
    ``(1 - rho) I + rho 1 1^T`` scaled by the stds.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if not 0.0 <= rho <= 1.0:
        raise ValueError("rho must be in [0, 1]")
    stds = np.asarray(stds, dtype=float)
    if np.any(stds < 0):
        raise ValueError("standard deviations must be nonnegative")
    n = stds.size
    if block_size > n:
        raise ValueError(
            f"block_size {block_size} exceeds n={n}; a single all-covering "
            "block is equicorrelated, not block-diagonal"
        )
    if block_size == 1 and rho != 0.0:
        raise ValueError(
            "block_size=1 with rho != 0 is degenerate: single-object blocks "
            "have no off-diagonal entries, so rho would be silently ignored"
        )
    blocks = np.arange(n) // block_size
    same_block = blocks[:, None] == blocks[None, :]
    eye = np.eye(n, dtype=bool)
    correlation = np.where(eye, 1.0, np.where(same_block, rho, 0.0))
    return correlation * np.outer(stds, stds)


def banded_covariance(
    stds: Sequence[float], bandwidth: int, rho: float = 1.0
) -> np.ndarray:
    """Banded covariance from a moving-average construction (PSD by design).

    Naively truncating a decaying covariance beyond some lag breaks positive
    semi-definiteness; instead each error is modelled as a one-sided moving
    average of the ``bandwidth + 1`` most recent i.i.d. shocks, with older
    shocks damped by ``rho`` per lag.  Components ``i`` and ``j`` then share
    shocks exactly when ``|i - j| <= bandwidth``, so the covariance is
    exactly zero beyond that lag, PSD by construction
    (``Sigma = D A A^T D``), and its diagonal is rescaled so component ``i``
    has variance ``stds[i]**2``.  ``bandwidth = 0`` recovers independence.
    """
    if bandwidth < 0:
        raise ValueError("bandwidth must be nonnegative")
    if not 0.0 <= rho <= 1.0:
        raise ValueError("rho must be in [0, 1]")
    stds = np.asarray(stds, dtype=float)
    if np.any(stds < 0):
        raise ValueError("standard deviations must be nonnegative")
    n = stds.size
    if bandwidth >= n:
        raise ValueError(
            f"bandwidth {bandwidth} must be smaller than n={n} "
            "(a full-width band is a dense matrix, not a banded one)"
        )
    # A[i, k] = damping of shock k in component i, causal: component i mixes
    # shocks k in [i - bandwidth, i] only, so (A A^T)_{ij} needs a shared
    # shock and vanishes beyond lag `bandwidth`.
    lags = np.subtract.outer(np.arange(n), np.arange(n))
    damping = np.where((lags >= 0) & (lags <= bandwidth), rho ** np.abs(lags), 0.0)
    correlation = damping @ damping.T
    norms = np.sqrt(np.diagonal(correlation))
    correlation = correlation / np.outer(norms, norms)
    return correlation * np.outer(stds, stds)


def conditional_covariance(
    covariance: np.ndarray, observed: Sequence[int]
) -> np.ndarray:
    """Covariance of the unobserved components given the observed ones.

    For a multivariate normal, conditioning on any outcome of the observed
    components leaves the remaining components with covariance
    ``Sigma_rr - Sigma_ro Sigma_oo^{-1} Sigma_or`` (Schur complement), which
    does not depend on the observed values.  The returned matrix is indexed by
    the unobserved components in their original order.

    This is the scratch reference; :class:`ConditionalGaussian` produces the
    same matrix one observation at a time in O(n^2) per observation.
    """
    covariance = np.asarray(covariance, dtype=float)
    n = covariance.shape[0]
    observed = sorted(set(int(i) for i in observed))
    remaining = [i for i in range(n) if i not in observed]
    if not remaining:
        return np.zeros((0, 0))
    if not observed:
        return covariance[np.ix_(remaining, remaining)]
    sigma_rr = covariance[np.ix_(remaining, remaining)]
    sigma_ro = covariance[np.ix_(remaining, observed)]
    sigma_oo = covariance[np.ix_(observed, observed)]
    # Use the pseudo-inverse so degenerate (zero-variance or perfectly
    # correlated) observations are handled gracefully.
    adjustment = sigma_ro @ np.linalg.pinv(sigma_oo) @ sigma_ro.T
    return sigma_rr - adjustment


class ConditionalGaussian:
    """Incrementally maintained covariance of a Gaussian under cleaning.

    The engine keeps a full ``n x n`` working matrix in which the rows and
    columns of cleaned objects are zeroed, so quadratic forms over the full
    index set equal their restriction to the unclean objects — no index
    bookkeeping in the hot loop.  Two update modes:

    ``conditional=True``
        The working matrix is the conditional covariance ``Sigma|S``: each
        :meth:`condition_on` applies the rank-one downdate
        ``Sigma|S - s_j s_j^T / Sigma_jj|S`` (then zeroes row/column ``j``).
        This is the statistically exact multivariate-normal semantics and
        matches :func:`conditional_covariance` step for step.
    ``conditional=False``
        The working matrix is the *marginal* covariance of the objects left
        unclean (row/column zeroing only, no Schur adjustment) — the
        formulation the paper's Theorem 3.9 derivation uses.

    When ``weights`` are supplied the engine also maintains the matvec
    ``v = Sigma|S w`` across updates (O(n) extra per step), which makes

    * the current variance ``w^T Sigma|S w`` an O(n) dot product, and
    * the marginal benefit of cleaning *every* remaining candidate a single
      vectorized expression (:meth:`gains`): ``v^2 / diag`` in conditional
      mode, ``2 w v - w^2 diag`` in marginal mode.

    A degenerate pivot — ``Sigma_jj|S`` within a few ulps of zero *relative
    to that component's own original variance* — skips the downdate and only
    zeroes the row/column.  At that magnitude the pivot is indistinguishable
    from the rounding residue of cancellation (conditioning only ever
    shrinks diagonals), so dividing by it would amplify noise; this mirrors
    the relative cutoff ``pinv`` applies in the scratch path, and in that
    regime neither path's output is meaningful to tight tolerances anyway.
    Any pivot genuinely above the noise floor conditions normally, however
    small it is compared to *other* components — a globally tiny but
    informative component must still downdate (its column can carry O(1)
    variance reductions: the entries scale with sqrt(pivot) times the
    correlated components' scales).
    """

    #: Relative noise floor for pivots: a handful of ulps of the component's
    #: original variance.  Matches the scale of cancellation residue, far
    #: below any genuinely informative conditional variance.
    _PIVOT_RTOL = 16.0 * np.finfo(float).eps

    def __init__(
        self,
        covariance: np.ndarray,
        weights: Optional[Sequence[float]] = None,
        conditional: bool = True,
        validate: bool = True,
        dtype=None,
    ):
        if dtype is None:
            dtype = kernels.get_kernel_dtype()
        sigma = np.array(covariance, dtype=dtype)
        if sigma.ndim != 2 or sigma.shape[0] != sigma.shape[1]:
            raise ValueError(f"covariance must be square, got shape {sigma.shape}")
        if validate and not np.allclose(sigma, sigma.T, atol=1e-9):
            raise ValueError("covariance matrix must be symmetric")
        self._sigma = sigma
        self._n = int(sigma.shape[0])
        self._conditional = bool(conditional)
        self._cleaned: List[int] = []
        self._cleaned_mask = np.zeros(self._n, dtype=bool)
        # Per-component noise floor: relative to each component's own
        # original variance, NOT the peak diagonal — a globally tiny but
        # informative component must still condition.  The floor scales with
        # the working precision's ulp, so float32 engines treat float32
        # cancellation residue as degenerate.
        eps_scale = np.finfo(sigma.dtype).eps / np.finfo(np.float64).eps
        self._pivot_floor = np.asarray(
            np.abs(np.diagonal(sigma)) * (self._PIVOT_RTOL * float(eps_scale)),
            dtype=sigma.dtype,
        )
        self._weights: Optional[np.ndarray] = None
        self._matvec: Optional[np.ndarray] = None
        if weights is not None:
            self.set_weights(weights)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of components of the underlying Gaussian."""
        return self._n

    @property
    def conditional(self) -> bool:
        """True in conditional (Schur) mode, False in marginal mode."""
        return self._conditional

    @property
    def cleaned(self) -> List[int]:
        """Cleaned object indices, in conditioning order."""
        return list(self._cleaned)

    def is_cleaned(self, index: int) -> bool:
        """True if ``index`` was already conditioned on (``condition_on``
        raises for such indices, so warm-started callers check first)."""
        return bool(self._cleaned_mask[int(index)])

    @property
    def matrix(self) -> np.ndarray:
        """The working covariance (cleaned rows/columns zeroed).  Do not mutate.

        The dense engine holds this array anyway, so returning it is free.
        The structured engines (:mod:`repro.uncertainty.structured`) would
        have to *materialize* n x n to answer the same question, so their
        ``matrix`` is guarded by
        :data:`~repro.uncertainty.structured.DENSE_MATERIALIZATION_LIMIT`
        and raises at structured sizes instead of silently allocating
        terabytes — treat ``matrix`` as a small-n debugging aid, never as a
        hot-path input.
        """
        return self._sigma

    def submatrix(self) -> np.ndarray:
        """Working covariance restricted to the unclean objects (original order).

        In conditional mode this equals
        ``conditional_covariance(covariance, cleaned)``.
        """
        remaining = np.flatnonzero(~self._cleaned_mask)
        return self._sigma[np.ix_(remaining, remaining)]

    def set_weights(self, weights: Sequence[float]) -> None:
        """Attach (or replace) the linear functional the engine scores against."""
        w = np.array(weights, dtype=self._sigma.dtype)
        if w.shape != (self._n,):
            raise ValueError(f"weights must have shape ({self._n},), got {w.shape}")
        self._weights = w
        self._matvec = self._sigma @ w

    # ------------------------------------------------------------------ #
    # Updates and scoring
    # ------------------------------------------------------------------ #
    def condition_on(self, index: int) -> None:
        """Clean object ``index``: one rank-one downdate (O(n^2)) per call."""
        j = int(index)
        if not 0 <= j < self._n:
            raise IndexError(f"object index {j} out of range for n={self._n}")
        if self._cleaned_mask[j]:
            raise ValueError(f"object {j} is already cleaned")
        sigma = self._sigma
        pivot = float(sigma[j, j])
        column = sigma[:, j].copy()
        if self._conditional and pivot > self._pivot_floor[j]:
            kernels.outer_downdate(sigma, column, pivot)
            if self._matvec is not None:
                self._matvec -= (self._matvec[j] / pivot) * column
        elif self._matvec is not None:
            # Marginal mode (or a degenerate pivot): zeroing row/column j
            # removes its terms from the matvec.
            self._matvec -= self._weights[j] * column
        # Zero the cleaned row/column so full-index quadratic forms equal the
        # restriction to the unclean objects (the downdate leaves ~1e-17
        # rounding residue there in conditional mode).
        sigma[j, :] = 0.0
        sigma[:, j] = 0.0
        if self._matvec is not None:
            self._matvec[j] = 0.0
        self._cleaned_mask[j] = True
        self._cleaned.append(j)

    def variance(self) -> float:
        """Current variance of ``w . X`` (conditional or marginal per mode)."""
        if self._matvec is None:
            raise ValueError("variance() requires weights; call set_weights first")
        return float(self._weights @ self._matvec)

    def gains(self) -> np.ndarray:
        """Marginal variance reduction of cleaning each remaining candidate.

        One vectorized expression over all n candidates — the engine's whole
        point.  Cleaned objects (and degenerate pivots in conditional mode)
        score 0.  Marginal-mode gains may be negative when cross-covariances
        are, exactly like the scratch benefit they replace.
        """
        if self._matvec is None:
            raise ValueError("gains() requires weights; call set_weights first")
        # np.diagonal returns a strided view; the compiled tier needs a
        # contiguous buffer, and the O(n) copy is noise next to the O(n^2)
        # downdate that precedes every gains pass.
        diagonal = np.ascontiguousarray(np.diagonal(self._sigma))
        v = self._matvec
        if self._conditional:
            return kernels.conditional_gains(v, diagonal, self._pivot_floor)
        return kernels.marginal_gains(self._weights, v, diagonal, self._cleaned_mask)

    def gain_of(self, index: int) -> float:
        """Marginal variance reduction of cleaning one candidate."""
        return float(self.gains()[int(index)])

    def copy(self) -> "ConditionalGaussian":
        """Independent copy of the engine state (for branching searches)."""
        clone = object.__new__(ConditionalGaussian)
        clone._sigma = self._sigma.copy()
        clone._n = self._n
        clone._conditional = self._conditional
        clone._cleaned = list(self._cleaned)
        clone._cleaned_mask = self._cleaned_mask.copy()
        clone._pivot_floor = self._pivot_floor.copy()
        clone._weights = None if self._weights is None else self._weights.copy()
        clone._matvec = None if self._matvec is None else self._matvec.copy()
        return clone


class GaussianWorldModel:
    """A multivariate normal model for the joint error distribution.

    Wraps a mean vector and a covariance matrix and provides the quantities
    the dependency-aware algorithms and the Theorem 3.9 analysis need:

    * variance of a linear functional ``w . X``;
    * expected post-cleaning variance of a linear functional after cleaning a
      subset (which, for a multivariate normal, is deterministic -- the
      conditional covariance does not depend on the revealed values), both as
      a scalar (scratch Schur complement) and batched over every candidate
      through the :class:`ConditionalGaussian` engine;
    * probability that a linear functional falls below a threshold after
      cleaning a subset (the MaxPr objective for linear claims), scalar and
      batched.

    ``validate=False`` skips the O(n^3) positive-semi-definiteness eigenvalue
    check — for matrices that are PSD by construction (e.g.
    :func:`decaying_covariance`) at paper scale, the check would dominate the
    model's construction cost.

    A model can alternatively be built over a compact
    :class:`~repro.uncertainty.structured.StructuredCovariance`
    (:meth:`from_structure`): ``structure`` then carries the tag the engine
    dispatch inspects, :meth:`engine` returns the matching structured engine
    (banded / block / low-rank) instead of the dense
    :class:`ConditionalGaussian`, and :attr:`covariance` materializes the
    dense matrix lazily — guarded so a stray access at n = 10^6 raises
    :class:`~repro.uncertainty.structured.StructureTooLargeError` instead of
    allocating 8 TB.
    """

    def __init__(
        self,
        means: Sequence[float],
        covariance: Optional[np.ndarray] = None,
        validate: bool = True,
        structure: Optional["StructuredCovariance"] = None,
    ):
        self.means = np.asarray(means, dtype=float)
        n = self.means.size
        if (covariance is None) == (structure is None):
            raise ValueError("provide exactly one of covariance or structure")
        #: The structure tag (a StructuredCovariance) or None for dense models.
        self.structure = structure
        if structure is not None:
            if structure.size != n:
                raise ValueError(
                    f"structure has {structure.size} components, means have {n}"
                )
            self._covariance: Optional[np.ndarray] = None
        else:
            dense = np.asarray(covariance, dtype=float)
            if dense.shape != (n, n):
                raise ValueError(f"covariance must be {n}x{n}, got {dense.shape}")
            if validate:
                if not np.allclose(dense, dense.T, atol=1e-9):
                    raise ValueError("covariance matrix must be symmetric")
                eigenvalues = np.linalg.eigvalsh(dense)
                if np.any(eigenvalues < -1e-8):
                    raise ValueError("covariance matrix must be positive semi-definite")
            self._covariance = dense
        # Sampling factor (Cholesky, or the eigen fallback for semi-definite
        # matrices), computed lazily and cached — rng.multivariate_normal
        # refactorizes the covariance on every call.
        self._sampling_factor: Optional[np.ndarray] = None

    @property
    def covariance(self) -> np.ndarray:
        """The dense covariance matrix.

        For structured models this *materializes* the dense matrix on first
        access (cached afterwards) and is guarded by
        :data:`~repro.uncertainty.structured.DENSE_MATERIALIZATION_LIMIT`:
        above it, the access raises
        :class:`~repro.uncertainty.structured.StructureTooLargeError` with
        instructions, instead of silently allocating an n x n array the
        structured representation exists to avoid.  Structure-aware callers
        should use :attr:`structure` / :meth:`engine` /
        :meth:`variance_of_linear` instead.
        """
        if self._covariance is None:
            self._covariance = self.structure.to_dense()
        return self._covariance

    @classmethod
    def independent(cls, means: Sequence[float], stds: Sequence[float]) -> "GaussianWorldModel":
        """Model with independent components (diagonal covariance)."""
        stds = np.asarray(stds, dtype=float)
        return cls(means, np.diag(stds**2))

    @classmethod
    def from_structure(
        cls, means: Sequence[float], structure: "StructuredCovariance"
    ) -> "GaussianWorldModel":
        """Model over a compact structured covariance (banded / block / low-rank).

        The structure is PSD by construction, so no O(n^3) validation runs;
        :meth:`engine` dispatches on ``structure.kind`` and the dense
        :attr:`covariance` is only materialized (guarded) on explicit access.
        """
        return cls(means, structure=structure)

    @classmethod
    def from_database(
        cls,
        database: UncertainDatabase,
        gamma: float = 0.0,
        centered_at_current: bool = True,
        validate: bool = True,
    ) -> "GaussianWorldModel":
        """Build a model from a database of normal-error objects.

        ``gamma`` injects the Section 4.5 decaying dependency; ``gamma = 0``
        keeps the errors independent.  ``centered_at_current`` centres the
        model at the current values ``u`` (Theorem 3.9's assumption); set it to
        False to centre at the per-object distribution means instead.
        """
        means = database.current_values if centered_at_current else database.means
        covariance = decaying_covariance(database.stds, gamma)
        return cls(means, covariance, validate=validate)

    @property
    def size(self) -> int:
        """Number of components of the model."""
        return int(self.means.size)

    def engine(
        self, weights: Optional[Sequence[float]] = None, conditional: bool = True
    ) -> ConditionalGaussian:
        """A fresh conditioning engine over this model's covariance.

        Structured models dispatch on their structure tag: a banded / block /
        low-rank model returns the matching structured engine (same
        ``condition_on`` / ``gains`` / ``variance`` surface, O(n * bandwidth)
        or O(block^2) or O(n r) per step), so ``GreedyDep`` and
        ``AdaptiveDep`` exploit structure without any changes.  Dense models
        keep the :class:`ConditionalGaussian` fallback unchanged; its
        covariance was validated at model construction, so the engine skips
        its own symmetry check (it takes a working copy regardless).
        """
        if self.structure is not None:
            return self.structure.engine(weights=weights, conditional=conditional)
        return ConditionalGaussian(
            self.covariance, weights=weights, conditional=conditional, validate=False
        )

    # ------------------------------------------------------------------ #
    # Linear functionals
    # ------------------------------------------------------------------ #
    def variance_of_linear(self, weights: Sequence[float]) -> float:
        """Variance of ``w . X`` (structure-aware: never materializes n x n)."""
        w = np.asarray(weights, dtype=float)
        if self.structure is not None and self._covariance is None:
            return float(w @ self.structure.matvec(w))
        return float(w @ self.covariance @ w)

    def post_cleaning_variance(self, weights: Sequence[float], cleaned: Sequence[int]) -> float:
        """Expected variance of ``w . X`` after cleaning the ``cleaned`` subset.

        Because the conditional covariance of a multivariate normal does not
        depend on the observed outcome, the expectation over cleaning outcomes
        equals the (deterministic) conditional variance, computed on the
        weights restricted to the uncleaned components.

        This is the scratch (pseudo-inverse Schur complement) reference; use
        :meth:`post_cleaning_variance_batch` or :meth:`engine` for the
        incremental path.
        """
        w = np.asarray(weights, dtype=float)
        cleaned = sorted(set(int(i) for i in cleaned))
        remaining = [i for i in range(self.size) if i not in cleaned]
        if not remaining:
            return 0.0
        conditional = conditional_covariance(self.covariance, cleaned)
        w_remaining = w[remaining]
        return float(w_remaining @ conditional @ w_remaining)

    def post_cleaning_variance_batch(
        self, weights: Sequence[float], cleaned: Sequence[int] = ()
    ) -> np.ndarray:
        """Post-cleaning variance of ``w . X`` for every candidate extension.

        Entry ``j`` is the variance after cleaning ``cleaned + {j}`` (for
        ``j`` already cleaned, the variance after ``cleaned`` alone).  Built
        on the :class:`ConditionalGaussian` engine: one rank-one downdate per
        already-cleaned object, then a single vectorized gains pass — O(kn^2)
        total instead of n Schur complements.
        """
        engine = self.engine(weights, conditional=True)
        for index in sorted(set(int(i) for i in cleaned)):
            engine.condition_on(index)
        return engine.variance() - engine.gains()

    def surprise_probability(
        self,
        weights: Sequence[float],
        cleaned: Sequence[int],
        threshold_drop: float,
        current_values: Optional[Sequence[float]] = None,
    ) -> float:
        """MaxPr objective for a linear functional under this model.

        Computes ``Pr[w . X' < w . u - tau]`` where ``X'`` keeps the current
        values for uncleaned objects and re-draws the cleaned ones from the
        (marginal, possibly correlated) model.  ``threshold_drop`` is ``tau``.
        An empty cleaned set gives probability zero (the paper's convention).
        """
        from scipy import stats

        cleaned = sorted(set(int(i) for i in cleaned))
        if not cleaned:
            return 0.0
        w = np.asarray(weights, dtype=float)
        u = np.asarray(
            self.means if current_values is None else current_values, dtype=float
        )
        w_cleaned = w[cleaned]
        sub_cov = self.covariance[np.ix_(cleaned, cleaned)]
        variance = float(w_cleaned @ sub_cov @ w_cleaned)
        # Shift of the mean relative to the "all current values" baseline.
        mean_shift = float(w_cleaned @ (self.means[cleaned] - u[cleaned]))
        if variance <= 0.0:
            return 1.0 if mean_shift < -threshold_drop else 0.0
        return float(stats.norm.cdf((-threshold_drop - mean_shift) / np.sqrt(variance)))

    def surprise_probability_batch(
        self,
        weights: Sequence[float],
        cleaned: Sequence[int],
        threshold_drop: float,
        current_values: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Surprise probability for every candidate extension, vectorized.

        Entry ``j`` is :meth:`surprise_probability` of ``cleaned + {j}`` (for
        ``j`` already cleaned, of ``cleaned`` alone).  The quadratic form over
        ``S + {j}`` decomposes as ``var_S + 2 w_j (Sigma[:, S] w_S)_j +
        w_j^2 Sigma_jj``, so one matrix-vector product scores all candidates —
        the correlated analogue of the PR 3 singleton surprise kernel.
        Degenerate variances fall back to the scratch path's indicator.
        """
        from scipy import stats

        w = np.asarray(weights, dtype=float)
        u = np.asarray(
            self.means if current_values is None else current_values, dtype=float
        )
        shifts_all = w * (self.means - u)
        diagonal = np.diagonal(self.covariance)
        cleaned = sorted(set(int(i) for i in cleaned))
        if cleaned:
            w_cleaned = w[cleaned]
            base_variance = float(
                w_cleaned @ self.covariance[np.ix_(cleaned, cleaned)] @ w_cleaned
            )
            base_shift = float(shifts_all[cleaned].sum())
            cross = self.covariance[:, cleaned] @ w_cleaned
        else:
            base_variance = 0.0
            base_shift = 0.0
            cross = np.zeros(self.size, dtype=float)
        variances = base_variance + 2.0 * w * cross + (w * w) * diagonal
        shifts = base_shift + shifts_all
        if cleaned:
            variances[cleaned] = base_variance
            shifts[cleaned] = base_shift
        # The surprise kernel's degenerate convention (sd <= 0 -> indicator)
        # matches the scalar path, so clamping dead variances to sd = 0 and
        # dispatching one batched call covers both branches.
        sds = np.sqrt(np.where(variances > 0.0, variances, 0.0))
        return kernels.normal_surprise_scores(
            np.ascontiguousarray(shifts), sds, threshold_drop
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def _factor(self) -> np.ndarray:
        """Cached sampling factor ``L`` with ``L L^T = covariance``.

        Cholesky when the matrix is positive definite; for semi-definite
        matrices (perfectly correlated or zero-variance components) the
        pseudo-inverse-style eigen fallback clips tiny negative eigenvalues
        to zero and uses ``V sqrt(diag(lambda))``.
        """
        if self._sampling_factor is None:
            try:
                self._sampling_factor = np.linalg.cholesky(self.covariance)
            except np.linalg.LinAlgError:
                eigenvalues, eigenvectors = np.linalg.eigh(self.covariance)
                eigenvalues = np.clip(eigenvalues, 0.0, None)
                self._sampling_factor = eigenvectors * np.sqrt(eigenvalues)
        return self._sampling_factor

    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        """Draw worlds from the multivariate normal.

        Uses the cached factor (one factorization per model, computed on the
        first draw) instead of ``rng.multivariate_normal``, which refactorizes
        the covariance on every call.
        """
        factor = self._factor()
        shape = (self.size,) if size is None else (int(size), self.size)
        return self.means + rng.standard_normal(shape) @ factor.T
