"""Correlated (multivariate normal) world models.

The paper's theoretical guarantees mostly assume independent errors, but
Section 4.5 evaluates what happens when errors are correlated: a covariance
matrix with entries ``gamma**|j-i| * sigma_i * sigma_j`` is injected into the
CDC-firearms dataset, and dependency-aware algorithms (``GreedyDep``, the
brute-force ``OPT``) exploit it.  Theorem 3.9 also needs the general
multivariate normal machinery (conditional covariance via the Schur
complement).  This module provides that machinery.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.uncertainty.database import UncertainDatabase

__all__ = [
    "decaying_covariance",
    "conditional_covariance",
    "GaussianWorldModel",
]


def decaying_covariance(stds: Sequence[float], gamma: float) -> np.ndarray:
    """Covariance matrix with geometrically decaying cross-correlations.

    ``Cov[X_i, X_j] = gamma**|j-i| * sigma_i * sigma_j`` — the dependency
    injection model of Section 4.5.  ``gamma = 0`` recovers independence and
    ``gamma`` close to 1 makes neighbouring years strongly dependent.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    stds = np.asarray(stds, dtype=float)
    if np.any(stds < 0):
        raise ValueError("standard deviations must be nonnegative")
    n = stds.size
    lags = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    decay = np.where(lags == 0, 1.0, gamma**lags)
    return decay * np.outer(stds, stds)


def conditional_covariance(
    covariance: np.ndarray, observed: Sequence[int]
) -> np.ndarray:
    """Covariance of the unobserved components given the observed ones.

    For a multivariate normal, conditioning on any outcome of the observed
    components leaves the remaining components with covariance
    ``Sigma_rr - Sigma_ro Sigma_oo^{-1} Sigma_or`` (Schur complement), which
    does not depend on the observed values.  The returned matrix is indexed by
    the unobserved components in their original order.
    """
    covariance = np.asarray(covariance, dtype=float)
    n = covariance.shape[0]
    observed = sorted(set(int(i) for i in observed))
    remaining = [i for i in range(n) if i not in observed]
    if not remaining:
        return np.zeros((0, 0))
    if not observed:
        return covariance[np.ix_(remaining, remaining)]
    sigma_rr = covariance[np.ix_(remaining, remaining)]
    sigma_ro = covariance[np.ix_(remaining, observed)]
    sigma_oo = covariance[np.ix_(observed, observed)]
    # Use the pseudo-inverse so degenerate (zero-variance) observations are
    # handled gracefully.
    adjustment = sigma_ro @ np.linalg.pinv(sigma_oo) @ sigma_ro.T
    return sigma_rr - adjustment


class GaussianWorldModel:
    """A multivariate normal model for the joint error distribution.

    Wraps a mean vector and a covariance matrix and provides the quantities
    the dependency-aware algorithms and the Theorem 3.9 analysis need:

    * variance of a linear functional ``w . X``;
    * expected post-cleaning variance of a linear functional after cleaning a
      subset (which, for a multivariate normal, is deterministic -- the
      conditional covariance does not depend on the revealed values);
    * probability that a linear functional falls below a threshold after
      cleaning a subset (the MaxPr objective for linear claims).
    """

    def __init__(self, means: Sequence[float], covariance: np.ndarray):
        self.means = np.asarray(means, dtype=float)
        self.covariance = np.asarray(covariance, dtype=float)
        n = self.means.size
        if self.covariance.shape != (n, n):
            raise ValueError(
                f"covariance must be {n}x{n}, got {self.covariance.shape}"
            )
        if not np.allclose(self.covariance, self.covariance.T, atol=1e-9):
            raise ValueError("covariance matrix must be symmetric")
        eigenvalues = np.linalg.eigvalsh(self.covariance)
        if np.any(eigenvalues < -1e-8):
            raise ValueError("covariance matrix must be positive semi-definite")

    @classmethod
    def independent(cls, means: Sequence[float], stds: Sequence[float]) -> "GaussianWorldModel":
        """Model with independent components (diagonal covariance)."""
        stds = np.asarray(stds, dtype=float)
        return cls(means, np.diag(stds**2))

    @classmethod
    def from_database(
        cls, database: UncertainDatabase, gamma: float = 0.0, centered_at_current: bool = True
    ) -> "GaussianWorldModel":
        """Build a model from a database of normal-error objects.

        ``gamma`` injects the Section 4.5 decaying dependency; ``gamma = 0``
        keeps the errors independent.  ``centered_at_current`` centres the
        model at the current values ``u`` (Theorem 3.9's assumption); set it to
        False to centre at the per-object distribution means instead.
        """
        means = database.current_values if centered_at_current else database.means
        covariance = decaying_covariance(database.stds, gamma)
        return cls(means, covariance)

    @property
    def size(self) -> int:
        return int(self.means.size)

    # ------------------------------------------------------------------ #
    # Linear functionals
    # ------------------------------------------------------------------ #
    def variance_of_linear(self, weights: Sequence[float]) -> float:
        """Variance of ``w . X``."""
        w = np.asarray(weights, dtype=float)
        return float(w @ self.covariance @ w)

    def post_cleaning_variance(self, weights: Sequence[float], cleaned: Sequence[int]) -> float:
        """Expected variance of ``w . X`` after cleaning the ``cleaned`` subset.

        Because the conditional covariance of a multivariate normal does not
        depend on the observed outcome, the expectation over cleaning outcomes
        equals the (deterministic) conditional variance, computed on the
        weights restricted to the uncleaned components.
        """
        w = np.asarray(weights, dtype=float)
        cleaned = sorted(set(int(i) for i in cleaned))
        remaining = [i for i in range(self.size) if i not in cleaned]
        if not remaining:
            return 0.0
        conditional = conditional_covariance(self.covariance, cleaned)
        w_remaining = w[remaining]
        return float(w_remaining @ conditional @ w_remaining)

    def surprise_probability(
        self,
        weights: Sequence[float],
        cleaned: Sequence[int],
        threshold_drop: float,
        current_values: Optional[Sequence[float]] = None,
    ) -> float:
        """MaxPr objective for a linear functional under this model.

        Computes ``Pr[w . X' < w . u - tau]`` where ``X'`` keeps the current
        values for uncleaned objects and re-draws the cleaned ones from the
        (marginal, possibly correlated) model.  ``threshold_drop`` is ``tau``.
        An empty cleaned set gives probability zero (the paper's convention).
        """
        from scipy import stats

        cleaned = sorted(set(int(i) for i in cleaned))
        if not cleaned:
            return 0.0
        w = np.asarray(weights, dtype=float)
        u = np.asarray(
            self.means if current_values is None else current_values, dtype=float
        )
        w_cleaned = w[cleaned]
        sub_cov = self.covariance[np.ix_(cleaned, cleaned)]
        variance = float(w_cleaned @ sub_cov @ w_cleaned)
        # Shift of the mean relative to the "all current values" baseline.
        mean_shift = float(w_cleaned @ (self.means[cleaned] - u[cleaned]))
        if variance <= 0.0:
            return 1.0 if mean_shift < -threshold_drop else 0.0
        return float(stats.norm.cdf((-threshold_drop - mean_shift) / np.sqrt(variance)))

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample(self, rng: np.random.Generator, size: Optional[int] = None) -> np.ndarray:
        """Draw worlds from the multivariate normal."""
        return rng.multivariate_normal(self.means, self.covariance, size=size)
