"""Uncertainty substrate: probabilistic value models for uncertain databases.

This subpackage models the paper's data layer: a set of objects whose
*identities* are certain but whose *values* are uncertain.  Each object carries
a current (possibly erroneous) value ``u_i``, a probability distribution for
its true value ``X_i``, and a cleaning cost ``c_i``.  The
:class:`~repro.uncertainty.database.UncertainDatabase` collects objects and
provides the world-enumeration, sampling and conditioning primitives that the
optimization algorithms in :mod:`repro.core` are built on.
"""

from repro.uncertainty.distributions import (
    DiscreteDistribution,
    NormalSpec,
    discretize_normal,
)
from repro.uncertainty.objects import UncertainObject
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.correlation import (
    ConditionalGaussian,
    GaussianWorldModel,
    decaying_covariance,
    block_covariance,
    banded_covariance,
    conditional_covariance,
)
from repro.uncertainty.structured import (
    DENSE_MATERIALIZATION_LIMIT,
    BandedConditionalGaussian,
    BandedCovariance,
    BlockConditionalGaussian,
    BlockDiagonalCovariance,
    LowRankConditionalGaussian,
    LowRankCovariance,
    StructureTooLargeError,
    StructuredCovariance,
)

__all__ = [
    "DiscreteDistribution",
    "NormalSpec",
    "discretize_normal",
    "UncertainObject",
    "UncertainDatabase",
    "ConditionalGaussian",
    "GaussianWorldModel",
    "decaying_covariance",
    "block_covariance",
    "banded_covariance",
    "conditional_covariance",
    "DENSE_MATERIALIZATION_LIMIT",
    "StructureTooLargeError",
    "StructuredCovariance",
    "BandedCovariance",
    "BlockDiagonalCovariance",
    "LowRankCovariance",
    "BandedConditionalGaussian",
    "BlockConditionalGaussian",
    "LowRankConditionalGaussian",
]
