"""The uncertain database: an ordered collection of uncertain objects.

This is the substrate every algorithm in :mod:`repro.core` operates on.  It
exposes:

* vectorized views of current values, means, variances and costs;
* enumeration of the joint support of any subset of objects (assuming
  independent errors, the setting of Lemmas 3.2--3.6 and Theorem 3.8);
* world sampling (for Monte-Carlo estimators and the "in action" experiments);
* conditioning: producing the database that results from cleaning a subset of
  objects to specific revealed values.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.uncertainty.distributions import DiscreteDistribution, NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = ["UncertainDatabase"]


class UncertainDatabase:
    """An ordered set of :class:`UncertainObject` values.

    Objects are addressable both by integer index (their position) and by
    name.  The order is significant: claim functions reference objects by
    index, matching the paper's vector notation ``X = (X_1, ..., X_n)``.
    """

    def __init__(self, objects: Sequence[UncertainObject]):
        objects = list(objects)
        if not objects:
            raise ValueError("an uncertain database needs at least one object")
        names = [obj.name for obj in objects]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate object names: {duplicates}")
        self._objects: List[UncertainObject] = objects
        self._index_by_name: Dict[str, int] = {obj.name: i for i, obj in enumerate(objects)}

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects)

    def __getitem__(self, key) -> UncertainObject:
        if isinstance(key, str):
            return self._objects[self._index_by_name[key]]
        return self._objects[key]

    def __contains__(self, name: str) -> bool:
        return name in self._index_by_name

    def __repr__(self) -> str:
        return f"UncertainDatabase(n={len(self)}, total_cost={self.total_cost:g})"

    @property
    def objects(self) -> List[UncertainObject]:
        return list(self._objects)

    @property
    def names(self) -> List[str]:
        return [obj.name for obj in self._objects]

    def index_of(self, name: str) -> int:
        """Position of the object with the given name."""
        return self._index_by_name[name]

    def indices_of(self, names: Iterable[str]) -> List[int]:
        return [self._index_by_name[name] for name in names]

    # ------------------------------------------------------------------ #
    # Vector views
    # ------------------------------------------------------------------ #
    @property
    def current_values(self) -> np.ndarray:
        """The vector ``u`` of current (reported) values."""
        return np.array([obj.current_value for obj in self._objects], dtype=float)

    @property
    def means(self) -> np.ndarray:
        """Per-object means of the true-value distributions."""
        return np.array([obj.mean for obj in self._objects], dtype=float)

    @property
    def variances(self) -> np.ndarray:
        """Per-object variances of the true-value distributions."""
        return np.array([obj.variance for obj in self._objects], dtype=float)

    @property
    def stds(self) -> np.ndarray:
        return np.sqrt(self.variances)

    @property
    def costs(self) -> np.ndarray:
        """Per-object cleaning costs ``c_i``."""
        return np.array([obj.cost for obj in self._objects], dtype=float)

    @property
    def total_cost(self) -> float:
        """Cost of cleaning every object."""
        return float(self.costs.sum())

    def max_support_size(self) -> int:
        """Largest discrete support size among the objects (``V`` in Thm 3.8)."""
        sizes = [
            obj.distribution.support_size
            for obj in self._objects
            if isinstance(obj.distribution, DiscreteDistribution)
        ]
        return max(sizes) if sizes else 0

    def all_discrete(self) -> bool:
        """True when every object has a finite discrete distribution."""
        return all(isinstance(obj.distribution, DiscreteDistribution) for obj in self._objects)

    def all_normal(self) -> bool:
        """True when every object has a normal error model."""
        return all(isinstance(obj.distribution, NormalSpec) for obj in self._objects)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def discretized(self, points: int = 6, method: str = "quantile") -> "UncertainDatabase":
        """Database with every normal error model discretized."""
        return UncertainDatabase([obj.discretized(points=points, method=method) for obj in self._objects])

    def with_current_values(self, values: Sequence[float]) -> "UncertainDatabase":
        """Database with the same distributions but different current values."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self),):
            raise ValueError(f"expected {len(self)} values, got {values.shape}")
        updated = [
            UncertainObject(
                name=obj.name,
                current_value=float(v),
                distribution=obj.distribution,
                cost=obj.cost,
                label=obj.label,
            )
            for obj, v in zip(self._objects, values)
        ]
        return UncertainDatabase(updated)

    def cleaned(self, revealed: Mapping[int, float]) -> "UncertainDatabase":
        """Database after cleaning the objects in ``revealed``.

        ``revealed`` maps object indices to their revealed true values.  The
        cleaned objects become certain (point-mass distributions) while the
        remaining objects are untouched.
        """
        updated = []
        for i, obj in enumerate(self._objects):
            if i in revealed:
                updated.append(obj.cleaned(revealed[i]))
            else:
                updated.append(obj)
        return UncertainDatabase(updated)

    def subset(self, indices: Sequence[int]) -> "UncertainDatabase":
        """Database restricted to the given object positions (order preserved)."""
        return UncertainDatabase([self._objects[i] for i in indices])

    # ------------------------------------------------------------------ #
    # World enumeration (independent errors)
    # ------------------------------------------------------------------ #
    def enumerate_joint_support(
        self, indices: Sequence[int]
    ) -> Iterator[Tuple[Dict[int, float], float]]:
        """Enumerate the joint support of the objects at ``indices``.

        Yields ``(assignment, probability)`` pairs where ``assignment`` maps
        each index to a support value.  Errors are assumed independent, so the
        joint probability is the product of marginals.  Objects must have
        discrete distributions (discretize first otherwise).

        An empty ``indices`` yields a single empty assignment with probability
        one, which keeps callers uniform.
        """
        indices = list(indices)
        if not indices:
            yield {}, 1.0
            return
        supports = []
        for i in indices:
            dist = self._objects[i].distribution
            if not isinstance(dist, DiscreteDistribution):
                raise TypeError(
                    f"object {self._objects[i].name!r} has a continuous distribution; "
                    "call .discretized() before enumerating worlds"
                )
            supports.append(list(zip(dist.values, dist.probabilities)))
        for combo in itertools.product(*supports):
            probability = 1.0
            assignment = {}
            for index, (value, p) in zip(indices, combo):
                probability *= p
                assignment[index] = float(value)
            if probability > 0.0:
                yield assignment, probability

    def joint_support_size(self, indices: Sequence[int]) -> int:
        """Number of joint outcomes for the objects at ``indices``."""
        size = 1
        for i in indices:
            dist = self._objects[i].distribution
            if not isinstance(dist, DiscreteDistribution):
                raise TypeError("joint support size requires discrete distributions")
            size *= dist.support_size
        return size

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_world(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one full assignment of true values (a possible world)."""
        return np.array([obj.sample(rng) for obj in self._objects], dtype=float)

    def sample_worlds(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` worlds; returns an array of shape ``(count, n)``."""
        return np.stack([self.sample_world(rng) for _ in range(count)])

    def values_with_assignment(
        self, assignment: Mapping[int, float], base: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Full value vector with ``assignment`` overriding ``base``.

        ``base`` defaults to the vector of current values, matching the MaxPr
        semantics where uncleaned objects keep their current values.
        """
        values = np.array(self.current_values if base is None else base, dtype=float, copy=True)
        for index, value in assignment.items():
            values[index] = value
        return values
