"""The uncertain database: an ordered collection of uncertain objects.

This is the substrate every algorithm in :mod:`repro.core` operates on.  It
exposes:

* vectorized views of current values, means, variances and costs — computed
  once at construction (the database is immutable) and returned as read-only
  arrays, so greedy loops can read them every round without rebuilding lists;
* enumeration of the joint support of any subset of objects (assuming
  independent errors, the setting of Lemmas 3.2--3.6 and Theorem 3.8), both
  as a lazy generator (:meth:`UncertainDatabase.enumerate_joint_support`) and
  as batched ``(worlds, k)`` arrays (:meth:`UncertainDatabase.joint_support_arrays`)
  for the vectorized kernels;
* world sampling (for Monte-Carlo estimators and the "in action" experiments),
  batched column-by-column through ``distribution.sample(rng, size)``;
* conditioning: producing the database that results from cleaning a subset of
  objects to specific revealed values.  ``with_current_values`` / ``cleaned``
  / ``subset`` return fresh instances with their own cached vectors (a full
  O(n) rebuild), while :meth:`UncertainDatabase.conditioned` returns a cheap
  *reveal overlay* — shared name index and cost vector, numpy-copied stat
  vectors with the reveal applied, and an object list materialized lazily —
  which is what the adaptive policies use so that a k-step run costs k small
  deltas instead of k full rebuilds;
* non-reveal overlays for the streaming engine:
  :meth:`UncertainDatabase.with_cost` (replace one object's cleaning cost)
  and :meth:`UncertainDatabase.with_appended` (append new objects) share the
  root's arrays the same GC-able way ``conditioned()`` does — every overlay,
  whatever the mix of reveals / cost changes / appends, references the *root*
  database plus one accumulated delta, so a long event stream never copies
  the database and never pins intermediate overlays.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.uncertainty.distributions import DiscreteDistribution, NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = ["UncertainDatabase"]


class UncertainDatabase:
    """An ordered set of :class:`UncertainObject` values.

    Objects are addressable both by integer index (their position) and by
    name.  The order is significant: claim functions reference objects by
    index, matching the paper's vector notation ``X = (X_1, ..., X_n)``.
    """

    def __init__(self, objects: Sequence[UncertainObject]):
        objects = list(objects)
        if not objects:
            raise ValueError("an uncertain database needs at least one object")
        names = [obj.name for obj in objects]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate object names: {duplicates}")
        self._objects_list: Optional[List[UncertainObject]] = objects
        self._index_by_name: Optional[Dict[str, int]] = {
            obj.name: i for i, obj in enumerate(objects)
        }
        # Array-backed databases (`from_normal_arrays`) carry a name prefix
        # instead of an object list; None means object-backed.
        self._array_prefix: Optional[str] = None
        # Overlay state.  A plain database is its own base; an overlay built
        # by `conditioned` / `with_cost` / `with_appended` references the
        # *root* database (never an intermediate overlay, so chains of deltas
        # don't pin dead overlays) plus the accumulated deltas: the
        # {index: revealed value} reveals, the {index: new cost} cost
        # overrides, and the tuple of appended objects.
        self._overlay_base: Optional["UncertainDatabase"] = None
        self._overlay_delta: Dict[int, float] = {}
        self._overlay_costs: Dict[int, float] = {}
        self._overlay_appended: Tuple[UncertainObject, ...] = ()
        self._overlay_objects: Dict[int, UncertainObject] = {}
        # Objects are immutable (frozen dataclasses), so the vector views can
        # be materialized once and shared.  They are marked read-only; callers
        # that need a scratch vector copy first (as they already did).
        self._current_values = self._frozen([obj.current_value for obj in objects])
        self._means = self._frozen([obj.mean for obj in objects])
        self._variances = self._frozen([obj.variance for obj in objects])
        self._costs = self._frozen([obj.cost for obj in objects])
        self._stds = self._frozen(np.sqrt(self._variances))
        self._total_cost = float(self._costs.sum())
        self._validate_stats(lambda i: f" ({names[i]!r})")

    def _validate_stats(self, describe) -> None:
        """Reject NaN / infinite stats and NaN / nonpositive costs.

        A NaN current value or variance silently poisons every downstream
        benefit ratio and covariance solve; failing construction with the
        offending index is the only place the mistake is still attributable
        to its source.  ``math.inf`` is allowed *only* as a cost (the
        streaming tombstone for removed objects).
        """
        for label, vector in (
            ("current value", self._current_values),
            ("mean", self._means),
            ("variance", self._variances),
        ):
            finite = np.isfinite(vector)
            if not finite.all():
                index = int(np.argmin(finite))
                raise ValueError(
                    f"object {index}{describe(index)} has a non-finite "
                    f"{label}: {vector[index]}"
                )
        valid = self._costs > 0  # False for NaN, zero and negative costs
        if not valid.all():
            index = int(np.argmin(valid))
            raise ValueError(
                f"object {index}{describe(index)} has an invalid cleaning "
                f"cost {self._costs[index]}: costs must be positive "
                f"(math.inf is allowed as a tombstone)"
            )

    @staticmethod
    def _frozen(values) -> np.ndarray:
        array = np.array(values, dtype=float)
        array.setflags(write=False)
        return array

    # ------------------------------------------------------------------ #
    # Array-backed construction (large n)
    # ------------------------------------------------------------------ #
    @classmethod
    def from_normal_arrays(
        cls,
        current_values: Sequence[float],
        stds: Sequence[float],
        costs: Optional[Sequence[float]] = None,
        means: Optional[Sequence[float]] = None,
        prefix: str = "obj",
    ) -> "UncertainDatabase":
        """All-normal database built directly from stat vectors.

        The per-object :class:`UncertainObject` list costs hundreds of bytes
        per entry, which dominates memory at the BENCH_scale regimes
        (n = 10^6); this constructor skips it entirely.  The four stat
        vectors are stored as the usual read-only views, object names are
        ``f"{prefix}{i}"``, and the name index and object list are
        materialized lazily only if something actually asks for them — the
        vectorized selection paths never do.  Semantically identical to
        ``UncertainDatabase([UncertainObject(f"{prefix}{i}", u[i],
        NormalSpec(mean[i], std[i]), cost[i]) for i in range(n)])``.

        ``means`` defaults to ``current_values`` (the usual "reported value
        is the best guess" workload setup); ``costs`` defaults to unit.
        """
        current = np.asarray(current_values, dtype=float)
        if current.ndim != 1 or current.size == 0:
            raise ValueError("current_values must be a non-empty 1-D array")
        n = current.size
        if not np.isfinite(current).all():
            index = int(np.argmin(np.isfinite(current)))
            raise ValueError(
                f"current_values[{index}] must be finite, got {current[index]}"
            )
        stds_arr = np.asarray(stds, dtype=float)
        if stds_arr.shape != (n,):
            raise ValueError(f"stds must have shape ({n},), got {stds_arr.shape}")
        valid_stds = np.isfinite(stds_arr) & (stds_arr >= 0)
        if not valid_stds.all():
            index = int(np.argmin(valid_stds))
            raise ValueError(
                f"stds[{index}] must be finite and nonnegative, got "
                f"{stds_arr[index]}"
            )
        if costs is None:
            costs_arr = np.ones(n, dtype=float)
        else:
            costs_arr = np.asarray(costs, dtype=float)
            if costs_arr.shape != (n,):
                raise ValueError(f"costs must have shape ({n},), got {costs_arr.shape}")
            valid_costs = costs_arr > 0  # False for NaN, zero and negatives
            if not valid_costs.all():
                index = int(np.argmin(valid_costs))
                raise ValueError(
                    f"costs[{index}] must be positive, got {costs_arr[index]}"
                )
        if means is None:
            means_arr = current
        else:
            means_arr = np.asarray(means, dtype=float)
            if means_arr.shape != (n,):
                raise ValueError(f"means must have shape ({n},), got {means_arr.shape}")
            if not np.isfinite(means_arr).all():
                index = int(np.argmin(np.isfinite(means_arr)))
                raise ValueError(
                    f"means[{index}] must be finite, got {means_arr[index]}"
                )
        if not prefix:
            raise ValueError("prefix must be non-empty")

        database = object.__new__(cls)
        database._objects_list = None
        database._index_by_name = None
        database._overlay_base = None
        database._overlay_delta = {}
        database._overlay_costs = {}
        database._overlay_appended = ()
        database._overlay_objects = {}
        database._array_prefix = str(prefix)
        database._current_values = cls._frozen(current)
        database._means = cls._frozen(means_arr)
        database._variances = cls._frozen(stds_arr * stds_arr)
        database._stds = cls._frozen(stds_arr)
        database._costs = cls._frozen(costs_arr)
        database._total_cost = float(database._costs.sum())
        return database

    def _array_object(self, index: int) -> UncertainObject:
        """Materialize the single object at ``index`` of an array-backed database."""
        return UncertainObject(
            name=f"{self._array_prefix}{index}",
            current_value=float(self._current_values[index]),
            distribution=NormalSpec(
                mean=float(self._means[index]), std=float(self._stds[index])
            ),
            cost=float(self._costs[index]),
        )

    def _name_index(self) -> Dict[str, int]:
        """The name -> position index, built lazily for array-backed databases."""
        if self._index_by_name is None:
            if self._overlay_appended:
                index = dict(self._overlay_base._name_index())
                offset = len(self._overlay_base)
                for position, obj in enumerate(self._overlay_appended):
                    index[obj.name] = offset + position
                self._index_by_name = index
            else:
                self._index_by_name = {
                    f"{self._array_prefix}{i}": i for i in range(len(self))
                }
        return self._index_by_name

    # ------------------------------------------------------------------ #
    # Overlays (incremental conditioning, cost changes, appends)
    # ------------------------------------------------------------------ #
    @property
    def _objects(self) -> List[UncertainObject]:
        """The object list; materialized on first full access for overlays."""
        if self._objects_list is None:
            if self._overlay_base is not None:
                materialized = list(self._overlay_base._objects)
                materialized.extend(self._overlay_appended)
                for index in set(self._overlay_delta) | set(self._overlay_costs):
                    materialized[index] = self._overlay_object(index)
            else:
                materialized = [self._array_object(i) for i in range(len(self))]
            self._objects_list = materialized
        return self._objects_list

    def _overlay_object(self, index: int) -> UncertainObject:
        """The object an overlay exposes at a revealed / re-costed position."""
        cached = self._overlay_objects.get(index)
        if cached is None:
            base = self._overlay_base
            if index < len(base):
                cached = base[index]
            else:
                cached = self._overlay_appended[index - len(base)]
            if index in self._overlay_delta:
                cached = cached.cleaned(self._overlay_delta[index])
            override = self._overlay_costs.get(index)
            if override is not None:
                cached = cached.with_cost(override)
            self._overlay_objects[index] = cached
        return cached

    def _overlay_root(self) -> "UncertainDatabase":
        """The root database a new overlay should reference (never an overlay)."""
        return self._overlay_base if self._overlay_base is not None else self

    @classmethod
    def _make_overlay(
        cls,
        base: "UncertainDatabase",
        delta: Dict[int, float],
        costs: Optional[Dict[int, float]] = None,
        appended: Tuple[UncertainObject, ...] = (),
    ) -> "UncertainDatabase":
        """Overlay of ``base`` with reveals, cost overrides and appends applied.

        Skips ``__init__`` entirely and shares whatever the delta leaves
        unchanged: with no appends the name index is shared and the stat
        vectors are shared (cost-only overlays) or numpy-copied with the
        revealed entries overwritten; the cost vector and total cost are
        shared unless a cost override or an append touches them.  Appends
        concatenate the appended objects' stats onto the base vectors.  The
        object list is always left unmaterialized.
        """
        costs = costs or {}
        appended = tuple(appended)
        overlay = object.__new__(cls)
        overlay._objects_list = None
        overlay._index_by_name = None if appended else base._index_by_name
        overlay._array_prefix = base._array_prefix
        overlay._overlay_base = base
        overlay._overlay_delta = delta
        overlay._overlay_costs = costs
        overlay._overlay_appended = appended
        overlay._overlay_objects = {}
        if appended:
            current = np.concatenate(
                [base._current_values, [obj.current_value for obj in appended]]
            )
            means = np.concatenate([base._means, [obj.mean for obj in appended]])
            variances = np.concatenate([base._variances, [obj.variance for obj in appended]])
            stds = np.concatenate([base._stds, [obj.std for obj in appended]])
        elif delta:
            current = base._current_values.copy()
            means = base._means.copy()
            variances = base._variances.copy()
            stds = base._stds.copy()
        else:
            current = means = variances = stds = None
        if delta:
            indices = np.fromiter(delta.keys(), dtype=np.intp, count=len(delta))
            values = np.fromiter(delta.values(), dtype=float, count=len(delta))
            current[indices] = values
            means[indices] = values
            variances[indices] = 0.0
            stds[indices] = 0.0
        if current is None:
            # Cost-only overlay: reveals and appends are absent, so the four
            # stat vectors are exactly the base's — share them.
            overlay._current_values = base._current_values
            overlay._means = base._means
            overlay._variances = base._variances
            overlay._stds = base._stds
        else:
            for vector in (current, means, variances, stds):
                vector.setflags(write=False)
            overlay._current_values = current
            overlay._means = means
            overlay._variances = variances
            overlay._stds = stds
        if costs or appended:
            if appended:
                cost_vector = np.concatenate(
                    [base._costs, [obj.cost for obj in appended]]
                )
            else:
                cost_vector = base._costs.copy()
            if costs:
                cost_indices = np.fromiter(costs.keys(), dtype=np.intp, count=len(costs))
                cost_values = np.fromiter(costs.values(), dtype=float, count=len(costs))
                cost_vector[cost_indices] = cost_values
            cost_vector.setflags(write=False)
            overlay._costs = cost_vector
            overlay._total_cost = float(cost_vector.sum())
        else:
            overlay._costs = base._costs
            overlay._total_cost = base._total_cost
        return overlay

    def conditioned(self, index: int, value: float) -> "UncertainDatabase":
        """Database after revealing object ``index`` to ``value`` — a cheap overlay.

        Semantically identical to ``cleaned({index: value})`` (the revealed
        object becomes a point mass at ``value`` and its mean/variance views
        update accordingly) but without rebuilding the n objects or
        re-deriving the cached vectors: the overlay shares the base's name
        index and cost vector, copies the stat vectors with one entry
        overwritten, and materializes cleaned objects lazily.  Conditioning
        an overlay extends its delta against the same root database (cost
        overrides and appends carry over), so a chain of k reveals holds one
        root reference and a k-entry delta — intermediate overlays are
        garbage-collectable.
        """
        index = int(index)
        if not 0 <= index < len(self):
            raise IndexError(f"object index {index} out of range for n={len(self)}")
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"revealed value for object {index} must be finite, got {value}"
            )
        delta = dict(self._overlay_delta)
        delta[index] = value
        return self._make_overlay(
            self._overlay_root(), delta, dict(self._overlay_costs), self._overlay_appended
        )

    def with_cost(self, index: int, cost: float) -> "UncertainDatabase":
        """Database with object ``index``'s cleaning cost replaced — a cheap overlay.

        The overlay shares the root's stat vectors outright (a cost change
        touches no distribution) and copies only the cost vector.  Like
        :meth:`conditioned`, stacking cost changes accumulates one delta
        against the root database, so intermediate overlays stay
        garbage-collectable.  ``math.inf`` is accepted and makes the object
        permanently unaffordable — the streaming engine's tombstone for
        removed objects.
        """
        index = int(index)
        if not 0 <= index < len(self):
            raise IndexError(f"object index {index} out of range for n={len(self)}")
        cost = float(cost)
        if not cost > 0:
            raise ValueError(f"cleaning cost must be positive, got {cost}")
        costs = dict(self._overlay_costs)
        costs[index] = cost
        return self._make_overlay(
            self._overlay_root(), dict(self._overlay_delta), costs, self._overlay_appended
        )

    def with_appended(self, objects: Sequence[UncertainObject]) -> "UncertainDatabase":
        """Database with ``objects`` appended at the end — a cheap overlay.

        Existing objects keep their positions (claim functions reference
        objects positionally, so appending never invalidates a claim), the
        new objects take positions ``len(self) ..``, and the overlay
        concatenates the root's stat vectors once instead of rebuilding n
        objects.  Appending to an overlay accumulates against the root like
        :meth:`conditioned` does.  Returns ``self`` unchanged for an empty
        sequence.
        """
        objects = tuple(objects)
        if not objects:
            return self
        new_names = [obj.name for obj in objects]
        if len(set(new_names)) != len(new_names):
            duplicates = sorted({n for n in new_names if new_names.count(n) > 1})
            raise ValueError(f"duplicate appended object names: {duplicates}")
        existing = self._name_index()
        clashes = sorted(name for name in new_names if name in existing)
        if clashes:
            raise ValueError(f"appended object names already exist: {clashes}")
        return self._make_overlay(
            self._overlay_root(),
            dict(self._overlay_delta),
            dict(self._overlay_costs),
            self._overlay_appended + objects,
        )

    @property
    def revealed(self) -> Dict[int, float]:
        """The reveals this overlay applies to its base (empty for plain databases)."""
        return dict(self._overlay_delta)

    @property
    def cost_overrides(self) -> Dict[int, float]:
        """The cost replacements this overlay applies (empty for plain databases)."""
        return dict(self._overlay_costs)

    @property
    def appended_count(self) -> int:
        """Number of objects this overlay appends to its root (0 for plain databases)."""
        return len(self._overlay_appended)

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        # Via the stat vector, not the object list: overlays answer len()
        # without materializing their objects.
        return int(self._current_values.shape[0])

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects)

    def __getitem__(self, key) -> UncertainObject:
        if isinstance(key, str):
            key = self._name_index()[key]
        if self._objects_list is None and isinstance(key, (int, np.integer)):
            # Overlay / array-backed fast path: serve single objects without
            # materializing the full list.
            index = int(key)
            if index < 0:
                index += len(self)
            if not 0 <= index < len(self):
                raise IndexError(f"object index {key} out of range for n={len(self)}")
            if index in self._overlay_delta or index in self._overlay_costs:
                return self._overlay_object(index)
            if self._overlay_base is not None:
                base = self._overlay_base
                if index >= len(base):
                    return self._overlay_appended[index - len(base)]
                return base[index]
            return self._array_object(index)
        return self._objects[key]

    def __contains__(self, name: str) -> bool:
        return name in self._name_index()

    def __repr__(self) -> str:
        return f"UncertainDatabase(n={len(self)}, total_cost={self.total_cost:g})"

    @property
    def objects(self) -> List[UncertainObject]:
        """The objects as a fresh list (overlays materialize lazily here)."""
        return list(self._objects)

    @property
    def names(self) -> List[str]:
        """Object names in positional order."""
        if self._objects_list is None and self._overlay_base is None:
            return [f"{self._array_prefix}{i}" for i in range(len(self))]
        if self._objects_list is None and self._overlay_base is not None:
            # Names are untouched by reveals and cost changes; answer from
            # the base plus appends without materializing the object list.
            return self._overlay_base.names + [
                obj.name for obj in self._overlay_appended
            ]
        return [obj.name for obj in self._objects]

    def index_of(self, name: str) -> int:
        """Position of the object with the given name."""
        return self._name_index()[name]

    def indices_of(self, names: Iterable[str]) -> List[int]:
        """Positions of the objects with the given names, in input order."""
        index = self._name_index()
        return [index[name] for name in names]

    # ------------------------------------------------------------------ #
    # Vector views
    # ------------------------------------------------------------------ #
    @property
    def current_values(self) -> np.ndarray:
        """The vector ``u`` of current (reported) values (read-only view)."""
        return self._current_values

    @property
    def means(self) -> np.ndarray:
        """Per-object means of the true-value distributions (read-only view)."""
        return self._means

    @property
    def variances(self) -> np.ndarray:
        """Per-object variances of the true-value distributions (read-only view)."""
        return self._variances

    @property
    def stds(self) -> np.ndarray:
        """Per-object standard deviations (read-only view)."""
        return self._stds

    @property
    def costs(self) -> np.ndarray:
        """Per-object cleaning costs ``c_i`` (read-only view)."""
        return self._costs

    @property
    def total_cost(self) -> float:
        """Cost of cleaning every object."""
        return self._total_cost

    def _is_pure_normal_arrays(self) -> bool:
        """True for array-backed databases with no reveals: every object is
        a :class:`NormalSpec` by construction, so the distribution-kind
        queries below can answer without materializing n objects."""
        return (
            self._array_prefix is not None
            and not self._overlay_delta
            and not self._overlay_appended
        )

    def max_support_size(self) -> int:
        """Largest discrete support size among the objects (``V`` in Thm 3.8)."""
        if self._is_pure_normal_arrays():
            return 0
        sizes = [
            obj.distribution.support_size
            for obj in self._objects
            if isinstance(obj.distribution, DiscreteDistribution)
        ]
        return max(sizes) if sizes else 0

    def all_discrete(self) -> bool:
        """True when every object has a finite discrete distribution."""
        if self._is_pure_normal_arrays():
            return False
        return all(isinstance(obj.distribution, DiscreteDistribution) for obj in self._objects)

    def all_normal(self) -> bool:
        """True when every object has a normal error model."""
        if self._is_pure_normal_arrays():
            return True
        return all(isinstance(obj.distribution, NormalSpec) for obj in self._objects)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def discretized(self, points: int = 6, method: str = "quantile") -> "UncertainDatabase":
        """Database with every normal error model discretized."""
        return UncertainDatabase([obj.discretized(points=points, method=method) for obj in self._objects])

    def with_current_values(self, values: Sequence[float]) -> "UncertainDatabase":
        """Database with the same distributions but different current values."""
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self),):
            raise ValueError(f"expected {len(self)} values, got {values.shape}")
        updated = [
            UncertainObject(
                name=obj.name,
                current_value=float(v),
                distribution=obj.distribution,
                cost=obj.cost,
                label=obj.label,
            )
            for obj, v in zip(self._objects, values)
        ]
        return UncertainDatabase(updated)

    def cleaned(self, revealed: Mapping[int, float]) -> "UncertainDatabase":
        """Database after cleaning the objects in ``revealed``.

        ``revealed`` maps object indices to their revealed true values.  The
        cleaned objects become certain (point-mass distributions) while the
        remaining objects are untouched.
        """
        updated = []
        for i, obj in enumerate(self._objects):
            if i in revealed:
                updated.append(obj.cleaned(revealed[i]))
            else:
                updated.append(obj)
        return UncertainDatabase(updated)

    def subset(self, indices: Sequence[int]) -> "UncertainDatabase":
        """Database restricted to the given object positions (order preserved)."""
        return UncertainDatabase([self._objects[i] for i in indices])

    # ------------------------------------------------------------------ #
    # World enumeration (independent errors)
    # ------------------------------------------------------------------ #
    def enumerate_joint_support(
        self, indices: Sequence[int]
    ) -> Iterator[Tuple[Dict[int, float], float]]:
        """Enumerate the joint support of the objects at ``indices``.

        Yields ``(assignment, probability)`` pairs where ``assignment`` maps
        each index to a support value.  Errors are assumed independent, so the
        joint probability is the product of marginals.  Objects must have
        discrete distributions (discretize first otherwise).

        An empty ``indices`` yields a single empty assignment with probability
        one, which keeps callers uniform.
        """
        indices = list(indices)
        if not indices:
            yield {}, 1.0
            return
        supports = []
        for i in indices:
            dist = self._objects[i].distribution
            if not isinstance(dist, DiscreteDistribution):
                raise TypeError(
                    f"object {self._objects[i].name!r} has a continuous distribution; "
                    "call .discretized() before enumerating worlds"
                )
            supports.append(list(zip(dist.values, dist.probabilities)))
        for combo in itertools.product(*supports):
            probability = 1.0
            assignment = {}
            for index, (value, p) in zip(indices, combo):
                probability *= p
                assignment[index] = float(value)
            if probability > 0.0:
                yield assignment, probability

    def joint_support_arrays(
        self, indices: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Joint support of the objects at ``indices`` as batched arrays.

        Returns ``(values_matrix, probabilities)`` where ``values_matrix`` has
        shape ``(worlds, len(indices))`` — column ``j`` holds the values taken
        by object ``indices[j]`` — and ``probabilities`` has shape
        ``(worlds,)``.  The row order matches
        :meth:`enumerate_joint_support` exactly (last index varies fastest)
        and zero-probability worlds are dropped, so the two views are
        interchangeable.  This is the input format of the vectorized
        expected-variance and surprise kernels, which assign the matrix into
        the referenced columns of a batched value matrix instead of walking
        per-world Python dicts.
        """
        indices = list(indices)
        if not indices:
            return np.zeros((1, 0), dtype=float), np.ones(1, dtype=float)
        supports = []
        weights = []
        for i in indices:
            dist = self._objects[i].distribution
            if not isinstance(dist, DiscreteDistribution):
                raise TypeError(
                    f"object {self._objects[i].name!r} has a continuous distribution; "
                    "call .discretized() before enumerating worlds"
                )
            supports.append(dist.values)
            weights.append(dist.probabilities)
        value_grids = np.meshgrid(*supports, indexing="ij")
        values_matrix = np.stack([grid.reshape(-1) for grid in value_grids], axis=1)
        probabilities = np.ones(values_matrix.shape[0], dtype=float)
        for grid in np.meshgrid(*weights, indexing="ij"):
            probabilities = probabilities * grid.reshape(-1)
        keep = probabilities > 0.0
        if not keep.all():
            values_matrix = values_matrix[keep]
            probabilities = probabilities[keep]
        return values_matrix, probabilities

    def joint_support_size(self, indices: Sequence[int]) -> int:
        """Number of joint outcomes for the objects at ``indices``."""
        size = 1
        for i in indices:
            dist = self._objects[i].distribution
            if not isinstance(dist, DiscreteDistribution):
                raise TypeError("joint support size requires discrete distributions")
            size *= dist.support_size
        return size

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_world(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one full assignment of true values (a possible world)."""
        return np.array([obj.sample(rng) for obj in self._objects], dtype=float)

    def sample_worlds(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` worlds; returns an array of shape ``(count, n)``.

        Sampling is batched column by column through
        ``distribution.sample(rng, size=count)``, so the cost is one vectorized
        draw per object instead of ``count * n`` scalar draws.  (The stream of
        random numbers therefore differs from calling :meth:`sample_world`
        ``count`` times, but any fixed seed still yields a reproducible batch.)
        """
        if count <= 0:
            return np.zeros((0, len(self)), dtype=float)
        if self._is_pure_normal_arrays():
            # One matrix draw instead of n column draws (different random
            # stream than the per-column path, but reproducible per seed).
            return rng.normal(self._means, self._stds, size=(count, len(self)))
        worlds = np.empty((count, len(self)), dtype=float)
        for j, obj in enumerate(self._objects):
            worlds[:, j] = obj.distribution.sample(rng, size=count)
        return worlds

    def values_with_assignment(
        self, assignment: Mapping[int, float], base: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Full value vector with ``assignment`` overriding ``base``.

        ``base`` defaults to the vector of current values, matching the MaxPr
        semantics where uncleaned objects keep their current values.
        """
        values = np.array(self.current_values if base is None else base, dtype=float, copy=True)
        for index, value in assignment.items():
            values[index] = value
        return values
