"""Structured covariance representations and their sublinear conditioning engines.

The dense :class:`~repro.uncertainty.correlation.ConditionalGaussian` pays
O(n^2) memory and O(n^2) per rank-one downdate, which caps the dependency
track at a few thousand objects.  The covariances the workload generators
actually produce are far from generic, though: banded (moving-average
shocks), block-diagonal (batched acquisition) or diagonal-plus-low-rank
(a few shared latent factors).  This module stores those structures
explicitly and conditions *inside* the structure:

========================  =======================  ====================  ==================
structure                 storage                  per-step downdate     memory
========================  =======================  ====================  ==================
:class:`BandedCovariance`        band vectors      O(bandwidth^2)        O(n * bandwidth)
:class:`BlockDiagonalCovariance` per-block dense   O(block^2)            O(n * block)
:class:`LowRankCovariance`       ``D + U M U^T``   O(n r + r^2)          O(n r + r^2)
dense ``ConditionalGaussian``    full matrix       O(n^2)                O(n^2)
========================  =======================  ====================  ==================

Each structure exposes ``engine(weights, conditional)`` returning an object
with the exact :class:`ConditionalGaussian` surface — ``condition_on`` /
``gains`` / ``variance`` / ``copy`` — so ``GreedyDep`` and ``AdaptiveDep``
run unchanged on top; :meth:`GaussianWorldModel.from_structure
<repro.uncertainty.correlation.GaussianWorldModel.from_structure>` is the
dispatch point.  The engines reproduce the dense engine's arithmetic (same
rank-one downdate, same per-component pivot floors), so selections and
per-step gains agree with the dense path to rounding at small n — the
equivalence the test suite pins at ``atol=1e-9``.

Two structure-specific notes:

* **Banded fill-in.**  Conditioning on component ``j`` downdates the whole
  window ``[j-b, j+b]^2``, which contains lags up to ``2b`` — a banded
  matrix is *not* closed under conditioning.  The band storage therefore
  widens on demand (extra zero band rows are appended when a downdate needs
  a larger lag), staying exact under arbitrary growth.  Fill spreads only
  through chains of overlapping cleaned windows; greedy's diminishing
  returns spreads its picks out, so the effective bandwidth stays small in
  practice — the scale benchmark records and asserts it.
* **Low-rank Woodbury.**  For ``Sigma = D + U M U^T`` the rank-one downdate
  by column ``j`` maps the r x r capacity matrix ``M`` to
  ``M - (M u_j)(M u_j)^T / pivot`` (the Woodbury-style update), leaving
  ``D`` and ``U`` untouched apart from zeroing row ``j`` — O(n r + r^2)
  per step, never materializing an n x n array.

Dense materialization (``to_dense`` / an engine's ``matrix``) is guarded by
:data:`DENSE_MATERIALIZATION_LIMIT`: above it, a stray debugging call raises
:class:`StructureTooLargeError` instead of silently allocating terabytes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels

__all__ = [
    "DENSE_MATERIALIZATION_LIMIT",
    "StructureTooLargeError",
    "StructuredCovariance",
    "BandedCovariance",
    "BlockDiagonalCovariance",
    "LowRankCovariance",
    "BandedConditionalGaussian",
    "BlockConditionalGaussian",
    "LowRankConditionalGaussian",
]

#: Largest n for which ``to_dense`` / ``matrix`` will materialize an n x n
#: array (128 MB of float64).  Above it they raise
#: :class:`StructureTooLargeError` — at n = 10^6 a dense covariance would be
#: 8 TB, and no structured code path ever needs it.
DENSE_MATERIALIZATION_LIMIT = 4096

#: Relative pivot noise floor — same value as
#: ``ConditionalGaussian._PIVOT_RTOL`` (kept in sync by a test) so the
#: structured engines branch to the degenerate-pivot path at exactly the
#: same threshold as the dense engine.
_PIVOT_RTOL = 16.0 * np.finfo(float).eps


class StructureTooLargeError(MemoryError):
    """Raised when a dense n x n materialization was requested at structured sizes."""


def _check_dense_ok(n: int, what: str, force: bool) -> None:
    if not force and n > DENSE_MATERIALIZATION_LIMIT:
        raise StructureTooLargeError(
            f"{what} would materialize a dense {n}x{n} array "
            f"({n * n * 8 / 1e9:.1f} GB); the structured representation exists "
            f"precisely to avoid that.  Pass force=True (or work below "
            f"n={DENSE_MATERIALIZATION_LIMIT}) if you really want the dense matrix."
        )


# --------------------------------------------------------------------------- #
# Structure representations
# --------------------------------------------------------------------------- #
class StructuredCovariance:
    """Base class for compact covariance representations.

    Subclasses store one structure class compactly and provide the pristine
    (pre-conditioning) linear algebra the world model needs — ``diagonal``,
    ``matvec`` — plus ``engine(...)`` returning the structure's conditioning
    engine.  ``kind`` is the structure tag
    :meth:`GaussianWorldModel.from_structure` dispatches on.
    """

    kind: str = "structured"

    @property
    def size(self) -> int:
        """Number of objects ``n`` the covariance spans."""
        raise NotImplementedError

    def diagonal(self) -> np.ndarray:
        """The variance vector ``diag(Sigma)`` (a fresh array)."""
        raise NotImplementedError

    def matvec(self, vector: Sequence[float]) -> np.ndarray:
        """``Sigma @ vector`` without materializing ``Sigma``."""
        raise NotImplementedError

    def to_dense(self, force: bool = False) -> np.ndarray:
        """The dense matrix (guarded by :data:`DENSE_MATERIALIZATION_LIMIT`)."""
        raise NotImplementedError

    def engine(
        self,
        weights: Optional[Sequence[float]] = None,
        conditional: bool = True,
    ):
        """A fresh conditioning engine over this structure."""
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Bytes of numeric storage the representation holds."""
        raise NotImplementedError

    def _validated_vector(self, values: Sequence[float], name: str) -> np.ndarray:
        array = np.asarray(values, dtype=float)
        if array.shape != (self.size,):
            raise ValueError(f"{name} must have shape ({self.size},), got {array.shape}")
        return array


class BandedCovariance(StructuredCovariance):
    """A symmetric banded covariance stored as per-lag band vectors.

    ``bands[d, i] = Sigma[i, i + d]`` for lags ``d = 0..bandwidth`` (entries
    past the matrix edge are zero).  O(n * bandwidth) memory instead of
    O(n^2); :meth:`from_moving_average` builds the same PSD moving-average
    construction as :func:`~repro.uncertainty.correlation.banded_covariance`
    without ever forming the dense matrix.
    """

    kind = "banded"

    def __init__(self, bands: np.ndarray):
        bands = np.array(bands, dtype=float)
        if bands.ndim != 2 or bands.shape[0] < 1:
            raise ValueError(
                f"bands must be a (bandwidth + 1, n) array, got shape {bands.shape}"
            )
        n = bands.shape[1]
        if bands.shape[0] > n:
            raise ValueError(
                f"bandwidth {bands.shape[0] - 1} must be smaller than n={n}"
            )
        # Entries past the matrix edge (Sigma[i, i+d] with i+d >= n) must be 0.
        for d in range(1, bands.shape[0]):
            if d and np.any(bands[d, n - d :] != 0.0):
                raise ValueError(f"band {d} has nonzero entries past the matrix edge")
        if np.any(bands[0] < 0.0):
            raise ValueError("the diagonal band must be nonnegative (variances)")
        self._bands = bands

    @classmethod
    def from_moving_average(
        cls, stds: Sequence[float], bandwidth: int, rho: float = 1.0
    ) -> "BandedCovariance":
        """Band-storage twin of :func:`banded_covariance` (same values, O(n*b) memory).

        Each error is a one-sided moving average of the ``bandwidth + 1`` most
        recent i.i.d. shocks damped by ``rho`` per lag, so
        ``corr[i+L, i] = rho^L * sum_{s=0..min(i, b-L)} rho^(2s)`` before
        normalization — computed per band instead of via the dense
        ``A A^T``.  Zero-``std`` components are allowed: they contribute a
        zero row/column and condition as degenerate pivots, exactly like the
        dense path.
        """
        stds = np.asarray(stds, dtype=float)
        n = stds.size
        if n < 1:
            raise ValueError("need at least one component")
        if bandwidth < 0:
            raise ValueError("bandwidth must be nonnegative")
        if bandwidth >= n:
            raise ValueError(
                f"bandwidth {bandwidth} must be smaller than n={n} "
                "(a full-width band is a dense matrix, not a banded one)"
            )
        if not 0.0 <= rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")
        if np.any(stds < 0):
            raise ValueError("standard deviations must be nonnegative")
        # Unnormalized correlation per lag: G[L, i] = rho^L * cum[min(i, b-L)]
        # where cum[s] = 1 + rho^2 + ... + rho^(2s).
        cum = np.cumsum(rho ** (2.0 * np.arange(bandwidth + 1)))
        positions = np.arange(n)
        g0 = cum[np.minimum(positions, bandwidth)]
        norms = np.sqrt(g0)
        bands = np.zeros((bandwidth + 1, n), dtype=float)
        bands[0] = stds * stds  # diag normalizes to exactly stds^2
        for lag in range(1, bandwidth + 1):
            i = positions[: n - lag]
            g = (rho**lag) * cum[np.minimum(i, bandwidth - lag)]
            bands[lag, : n - lag] = (
                g / (norms[i] * norms[i + lag]) * stds[i] * stds[i + lag]
            )
        return cls(bands)

    @property
    def size(self) -> int:
        """Number of objects ``n`` the covariance spans."""
        return int(self._bands.shape[1])

    @property
    def bandwidth(self) -> int:
        """Largest stored lag ``b`` (entries beyond ``|i-j| > b`` are zero)."""
        return int(self._bands.shape[0] - 1)

    @property
    def bands(self) -> np.ndarray:
        """The band storage (do not mutate)."""
        return self._bands

    def diagonal(self) -> np.ndarray:
        return self._bands[0].copy()

    def matvec(self, vector: Sequence[float]) -> np.ndarray:
        w = self._validated_vector(vector, "vector")
        return _band_matvec(self._bands, w)

    def to_dense(self, force: bool = False) -> np.ndarray:
        _check_dense_ok(self.size, "BandedCovariance.to_dense", force)
        return _band_to_dense(self._bands)

    def engine(
        self, weights: Optional[Sequence[float]] = None, conditional: bool = True
    ) -> "BandedConditionalGaussian":
        return BandedConditionalGaussian(self, weights=weights, conditional=conditional)

    @property
    def nbytes(self) -> int:
        """Bytes of band storage: ``(bandwidth + 1) * n`` floats."""
        return int(self._bands.nbytes)


class BlockDiagonalCovariance(StructuredCovariance):
    """A block-diagonal covariance stored as per-block dense matrices.

    Blocks cover consecutive index ranges; cross-block covariances are zero,
    so conditioning never leaves a block — O(block^2) per step instead of
    O(n^2).  :meth:`from_equicorrelated` builds the batched-acquisition
    model of :func:`~repro.uncertainty.correlation.block_covariance`.
    """

    kind = "block"

    def __init__(self, blocks: Sequence[np.ndarray]):
        mats: List[np.ndarray] = []
        for b, block in enumerate(blocks):
            mat = np.array(block, dtype=float)
            if mat.ndim != 2 or mat.shape[0] != mat.shape[1] or mat.shape[0] < 1:
                raise ValueError(f"block {b} must be a square matrix, got {mat.shape}")
            mats.append(mat)
        if not mats:
            raise ValueError("need at least one block")
        self._blocks = mats
        sizes = np.array([m.shape[0] for m in mats], dtype=np.intp)
        self._starts = np.concatenate([[0], np.cumsum(sizes)])
        self._n = int(self._starts[-1])
        # index -> owning block, so condition_on is O(1) to locate.
        self._block_of = np.repeat(np.arange(len(mats), dtype=np.intp), sizes)

    @classmethod
    def from_equicorrelated(
        cls, stds: Sequence[float], block_size: int, rho: float
    ) -> "BlockDiagonalCovariance":
        """Block-storage twin of :func:`block_covariance` (same values).

        Consecutive blocks of ``block_size`` with constant within-block
        correlation ``rho`` (the last block may be shorter).  ``block_size``
        must fit the database (at most n) and single-object blocks with
        ``rho > 0`` are rejected — there is no off-diagonal for ``rho`` to
        apply to, so the parameter would be silently dead.
        """
        stds = np.asarray(stds, dtype=float)
        n = stds.size
        if n < 1:
            raise ValueError("need at least one component")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if block_size > n:
            raise ValueError(
                f"block_size {block_size} exceeds n={n}; "
                "a single all-covering block is equicorrelated, not block-diagonal"
            )
        if block_size == 1 and rho != 0.0:
            raise ValueError(
                "block_size=1 with rho != 0 is degenerate: single-object blocks "
                "have no off-diagonal entries, so rho would be silently ignored"
            )
        if not 0.0 <= rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")
        if np.any(stds < 0):
            raise ValueError("standard deviations must be nonnegative")
        blocks = []
        for start in range(0, n, block_size):
            part = stds[start : start + block_size]
            m = part.size
            correlation = np.full((m, m), rho)
            np.fill_diagonal(correlation, 1.0)
            blocks.append(correlation * np.outer(part, part))
        return cls(blocks)

    @property
    def size(self) -> int:
        """Number of objects ``n`` the covariance spans."""
        return self._n

    @property
    def block_sizes(self) -> List[int]:
        """Per-block object counts, in positional order."""
        return [int(m.shape[0]) for m in self._blocks]

    @property
    def blocks(self) -> List[np.ndarray]:
        """The per-block matrices (do not mutate)."""
        return list(self._blocks)

    def diagonal(self) -> np.ndarray:
        return np.concatenate([np.diagonal(m) for m in self._blocks])

    def matvec(self, vector: Sequence[float]) -> np.ndarray:
        w = self._validated_vector(vector, "vector")
        out = np.empty(self._n, dtype=float)
        for b, mat in enumerate(self._blocks):
            lo, hi = self._starts[b], self._starts[b + 1]
            out[lo:hi] = mat @ w[lo:hi]
        return out

    def to_dense(self, force: bool = False) -> np.ndarray:
        _check_dense_ok(self.size, "BlockDiagonalCovariance.to_dense", force)
        dense = np.zeros((self._n, self._n), dtype=float)
        for b, mat in enumerate(self._blocks):
            lo, hi = self._starts[b], self._starts[b + 1]
            dense[lo:hi, lo:hi] = mat
        return dense

    def engine(
        self, weights: Optional[Sequence[float]] = None, conditional: bool = True
    ) -> "BlockConditionalGaussian":
        return BlockConditionalGaussian(self, weights=weights, conditional=conditional)

    @property
    def nbytes(self) -> int:
        """Bytes of per-block dense storage: ``sum(block_size**2)`` floats."""
        return int(sum(m.nbytes for m in self._blocks))


class LowRankCovariance(StructuredCovariance):
    """A diagonal-plus-low-rank covariance ``Sigma = diag(d) + U M U^T``.

    ``U`` is n x r (r latent factors), ``M`` the r x r capacity matrix
    (identity unless given).  Conditioning downdates only ``M`` (Woodbury),
    so memory stays O(n r + r^2).  Models a few shared systematic error
    sources on top of independent per-object noise.
    """

    kind = "low_rank"

    def __init__(
        self,
        diag: Sequence[float],
        factor: np.ndarray,
        capacity: Optional[np.ndarray] = None,
    ):
        d = np.asarray(diag, dtype=float)
        U = np.array(factor, dtype=float)
        if d.ndim != 1 or d.size < 1:
            raise ValueError("diag must be a nonempty vector")
        if np.any(d < 0):
            raise ValueError("diag entries are variances and must be nonnegative")
        if U.ndim != 2 or U.shape[0] != d.size:
            raise ValueError(
                f"factor must have shape ({d.size}, r), got {U.shape}"
            )
        if U.shape[1] > d.size:
            raise ValueError(
                f"rank {U.shape[1]} exceeds n={d.size}; use the dense engine instead"
            )
        r = U.shape[1]
        if capacity is None:
            M = np.eye(r)
        else:
            M = np.array(capacity, dtype=float)
            if M.shape != (r, r):
                raise ValueError(f"capacity must be {r}x{r}, got {M.shape}")
            if not np.allclose(M, M.T, atol=1e-9):
                raise ValueError("capacity matrix must be symmetric")
        self._d = d
        self._U = U
        self._M = M

    @property
    def size(self) -> int:
        """Number of objects ``n`` the covariance spans."""
        return int(self._d.size)

    @property
    def rank(self) -> int:
        """Number of latent factors ``r`` (columns of ``U``)."""
        return int(self._U.shape[1])

    def diagonal(self) -> np.ndarray:
        return self._d + np.einsum("ij,jk,ik->i", self._U, self._M, self._U)

    def matvec(self, vector: Sequence[float]) -> np.ndarray:
        w = self._validated_vector(vector, "vector")
        return self._d * w + self._U @ (self._M @ (self._U.T @ w))

    def to_dense(self, force: bool = False) -> np.ndarray:
        _check_dense_ok(self.size, "LowRankCovariance.to_dense", force)
        return np.diag(self._d) + self._U @ self._M @ self._U.T

    def engine(
        self, weights: Optional[Sequence[float]] = None, conditional: bool = True
    ) -> "LowRankConditionalGaussian":
        return LowRankConditionalGaussian(self, weights=weights, conditional=conditional)

    @property
    def nbytes(self) -> int:
        """Bytes of storage: ``n + n*r + r*r`` floats."""
        return int(self._d.nbytes + self._U.nbytes + self._M.nbytes)


# --------------------------------------------------------------------------- #
# Band helpers (shared by the representation and its engine)
# --------------------------------------------------------------------------- #
def _band_matvec(bands: np.ndarray, w: np.ndarray) -> np.ndarray:
    """``Sigma @ w`` from band storage, O(n * bandwidth)."""
    n = bands.shape[1]
    v = bands[0] * w
    for lag in range(1, bands.shape[0]):
        band = bands[lag, : n - lag]
        v[: n - lag] += band * w[lag:]
        v[lag:] += band * w[: n - lag]
    return v


def _band_to_dense(bands: np.ndarray) -> np.ndarray:
    n = bands.shape[1]
    dense = np.zeros((n, n), dtype=float)
    dense[np.arange(n), np.arange(n)] = bands[0]
    for lag in range(1, bands.shape[0]):
        i = np.arange(n - lag)
        dense[i, i + lag] = bands[lag, : n - lag]
        dense[i + lag, i] = bands[lag, : n - lag]
    return dense


# --------------------------------------------------------------------------- #
# Conditioning engines
# --------------------------------------------------------------------------- #
class _StructuredConditionalBase:
    """Shared scaffolding for the structured conditioning engines.

    Mirrors :class:`~repro.uncertainty.correlation.ConditionalGaussian`
    exactly: same two update modes (``conditional`` Schur downdate vs
    marginal row/column zeroing), same per-component pivot floors
    (``16 ulp`` of each component's *original* variance), same vectorized
    ``gains`` formulas over an incrementally maintained diagonal and matvec.
    Subclasses provide the structure-specific column extraction and storage
    downdate; everything a caller touches lives here.
    """

    def __init__(
        self,
        size: int,
        diagonal: np.ndarray,
        weights: Optional[Sequence[float]],
        conditional: bool,
        dtype=None,
    ):
        self._n = int(size)
        self._conditional = bool(conditional)
        self._cleaned: List[int] = []
        self._cleaned_mask = np.zeros(self._n, dtype=bool)
        self._dtype = np.dtype(dtype) if dtype is not None else kernels.get_kernel_dtype()
        self._diag = np.asarray(diagonal, dtype=self._dtype).copy()
        # Same relative floor as the dense engine, scaled to the working
        # precision's ulp (float32 cancellation residue is ~2^29 coarser).
        eps_scale = np.finfo(self._dtype).eps / np.finfo(np.float64).eps
        self._pivot_floor = np.asarray(
            np.abs(self._diag) * (_PIVOT_RTOL * float(eps_scale)), dtype=self._dtype
        )
        self._weights: Optional[np.ndarray] = None
        self._matvec: Optional[np.ndarray] = None
        if weights is not None:
            self.set_weights(weights)

    # -- state ---------------------------------------------------------- #
    @property
    def size(self) -> int:
        """Number of components of the underlying Gaussian."""
        return self._n

    @property
    def conditional(self) -> bool:
        """True in conditional (Schur) mode, False in marginal mode."""
        return self._conditional

    @property
    def cleaned(self) -> List[int]:
        """Cleaned object indices, in conditioning order."""
        return list(self._cleaned)

    def is_cleaned(self, index: int) -> bool:
        """True if ``index`` was already conditioned on (``condition_on``
        raises for such indices, so warm-started callers check first)."""
        return bool(self._cleaned_mask[int(index)])

    @property
    def matrix(self) -> np.ndarray:
        """The working covariance, reconstructed dense — guarded at structured sizes.

        Unlike the dense engine (whose ``matrix`` is a view of state it holds
        anyway), a structured engine must *materialize* n x n to answer this;
        above :data:`DENSE_MATERIALIZATION_LIMIT` it raises
        :class:`StructureTooLargeError` instead of allocating terabytes.
        Debugging aid only — never called on a hot path.
        """
        _check_dense_ok(self._n, f"{type(self).__name__}.matrix", force=False)
        return self._dense_working_matrix()

    def submatrix(self) -> np.ndarray:
        """Working covariance restricted to the unclean objects (guarded like ``matrix``)."""
        remaining = np.flatnonzero(~self._cleaned_mask)
        return self.matrix[np.ix_(remaining, remaining)]

    def set_weights(self, weights: Sequence[float]) -> None:
        """Attach (or replace) the linear functional the engine scores against."""
        w = np.array(weights, dtype=self._dtype)
        if w.shape != (self._n,):
            raise ValueError(f"weights must have shape ({self._n},), got {w.shape}")
        self._weights = w
        self._matvec = np.ascontiguousarray(self._current_matvec(w), dtype=self._dtype)

    # -- updates and scoring -------------------------------------------- #
    def condition_on(self, index: int) -> None:
        """Clean object ``index``: one structure-local downdate per call."""
        j = int(index)
        if not 0 <= j < self._n:
            raise IndexError(f"object index {j} out of range for n={self._n}")
        if self._cleaned_mask[j]:
            raise ValueError(f"object {j} is already cleaned")
        pivot = float(self._diag[j])
        lo, column = self._column_window(j)
        hi = lo + column.size
        if self._conditional and pivot > self._pivot_floor[j]:
            self._downdate(j, pivot, lo, column)
            self._diag[lo:hi] -= (column * column) / pivot
            if self._matvec is not None:
                self._matvec[lo:hi] -= (self._matvec[j] / pivot) * column
        elif self._matvec is not None:
            # Marginal mode (or a degenerate pivot): zeroing row/column j
            # removes its terms from the matvec.
            self._matvec[lo:hi] -= self._weights[j] * column
        self._zero_index(j)
        self._diag[j] = 0.0
        if self._matvec is not None:
            self._matvec[j] = 0.0
        self._cleaned_mask[j] = True
        self._cleaned.append(j)

    def variance(self) -> float:
        """Current variance of ``w . X`` (conditional or marginal per mode)."""
        if self._matvec is None:
            raise ValueError("variance() requires weights; call set_weights first")
        return float(self._weights @ self._matvec)

    def gains(self) -> np.ndarray:
        """Marginal variance reduction of cleaning each remaining candidate.

        Identical formulas to the dense engine — ``v^2 / diag`` in
        conditional mode (degenerate pivots score 0), ``2 w v - w^2 diag``
        in marginal mode — over the incrementally maintained diagonal.
        """
        if self._matvec is None:
            raise ValueError("gains() requires weights; call set_weights first")
        diagonal = self._diag
        v = self._matvec
        if self._conditional:
            return kernels.conditional_gains(v, diagonal, self._pivot_floor)
        return kernels.marginal_gains(self._weights, v, diagonal, self._cleaned_mask)

    def gain_of(self, index: int) -> float:
        """Marginal variance reduction of cleaning one candidate."""
        return float(self.gains()[int(index)])

    def copy(self):
        """Independent copy of the engine state (cheap: copies the structure, not n x n)."""
        clone = object.__new__(type(self))
        clone._n = self._n
        clone._dtype = self._dtype
        clone._conditional = self._conditional
        clone._cleaned = list(self._cleaned)
        clone._cleaned_mask = self._cleaned_mask.copy()
        clone._diag = self._diag.copy()
        clone._pivot_floor = self._pivot_floor.copy()
        clone._weights = None if self._weights is None else self._weights.copy()
        clone._matvec = None if self._matvec is None else self._matvec.copy()
        self._copy_storage_into(clone)
        return clone

    # -- subclass hooks -------------------------------------------------- #
    def _column_window(self, j: int) -> Tuple[int, np.ndarray]:
        """``(lo, column)``: the nonzero window ``Sigma|S[lo:lo+len, j]``."""
        raise NotImplementedError

    def _downdate(self, j: int, pivot: float, lo: int, column: np.ndarray) -> None:
        """Apply ``Sigma -= column column^T / pivot`` to the structure storage."""
        raise NotImplementedError

    def _zero_index(self, j: int) -> None:
        """Zero row/column ``j`` in the structure storage."""
        raise NotImplementedError

    def _current_matvec(self, w: np.ndarray) -> np.ndarray:
        """``Sigma|S @ w`` from the current storage."""
        raise NotImplementedError

    def _dense_working_matrix(self) -> np.ndarray:
        raise NotImplementedError

    def _copy_storage_into(self, clone) -> None:
        raise NotImplementedError


class BandedConditionalGaussian(_StructuredConditionalBase):
    """Banded engine: O(bandwidth^2) per downdate, O(n * bandwidth) memory.

    Conditioning fills lags up to twice the current bandwidth inside the
    cleaned window, so the band storage widens on demand (appending zero
    band rows) and :attr:`bandwidth` reports the current effective width —
    the quantity the scale benchmark asserts stays small.
    """

    def __init__(
        self,
        structure: BandedCovariance,
        weights: Optional[Sequence[float]] = None,
        conditional: bool = True,
        dtype=None,
    ):
        if dtype is None:
            dtype = kernels.get_kernel_dtype()
        self._bands = structure.bands.astype(dtype, copy=True)
        super().__init__(
            structure.size, structure.bands[0], weights, conditional, dtype=dtype
        )

    @property
    def bandwidth(self) -> int:
        """Current effective bandwidth (grows under conditional fill-in)."""
        return int(self._bands.shape[0] - 1)

    @property
    def storage_nbytes(self) -> int:
        """Bytes held by the band storage right now."""
        return int(self._bands.nbytes)

    def _column_window(self, j: int) -> Tuple[int, np.ndarray]:
        width = self._bands.shape[0] - 1
        lo = max(0, j - width)
        hi = min(self._n, j + width + 1)
        column = np.empty(hi - lo, dtype=self._bands.dtype)
        left = np.arange(lo, j + 1)
        column[: left.size] = self._bands[j - left, left]
        right = np.arange(j + 1, hi)
        column[left.size :] = self._bands[right - j, j]
        # Trim to the nonzero support: the storage bandwidth is a global
        # upper bound, but most columns only occupy their original band.
        # Without the trim every conditional downdate would widen the
        # storage to twice the *storage* width (not the column's actual
        # width), doubling the band per step until it hits n.  Trimming
        # keeps the downdate window — and therefore the fill-in and the
        # storage growth — proportional to the column's true extent.
        nonzero = np.flatnonzero(column)
        if nonzero.size == 0:
            # Fully zeroed neighborhood (e.g. a zero-variance component):
            # keep just the pivot position so the shared updates are no-ops.
            return j, column[j - lo : j - lo + 1]
        first, last = int(nonzero[0]), int(nonzero[-1])
        return lo + first, column[first : last + 1]

    def _downdate(self, j: int, pivot: float, lo: int, column: np.ndarray) -> None:
        m = column.size
        if self._bands.shape[0] < m:
            # Fill-in needs lags up to m - 1: widen the band storage.
            grow = min(m, self._n) - self._bands.shape[0]
            self._bands = np.vstack(
                [self._bands, np.zeros((grow, self._n), dtype=self._bands.dtype)]
            )
        # Entries (lo + i, lo + i + lag) for i = 0..m-1-lag, every lag.
        kernels.banded_downdate(self._bands, lo, column, pivot)

    def _zero_index(self, j: int) -> None:
        self._bands[:, j] = 0.0  # Sigma[j, j + d]
        d = np.arange(1, min(self._bands.shape[0], j + 1))
        self._bands[d, j - d] = 0.0  # Sigma[j - d, j]

    def _current_matvec(self, w: np.ndarray) -> np.ndarray:
        return _band_matvec(self._bands, w)

    def _dense_working_matrix(self) -> np.ndarray:
        return _band_to_dense(self._bands)

    def _copy_storage_into(self, clone: "BandedConditionalGaussian") -> None:
        clone._bands = self._bands.copy()


class BlockConditionalGaussian(_StructuredConditionalBase):
    """Block-diagonal engine: conditioning never leaves the block, O(block^2) per step."""

    def __init__(
        self,
        structure: BlockDiagonalCovariance,
        weights: Optional[Sequence[float]] = None,
        conditional: bool = True,
        dtype=None,
    ):
        if dtype is None:
            dtype = kernels.get_kernel_dtype()
        self._blocks = [m.astype(dtype, copy=True) for m in structure.blocks]
        self._starts = structure._starts
        self._block_of = structure._block_of
        super().__init__(
            structure.size, structure.diagonal(), weights, conditional, dtype=dtype
        )

    def _locate(self, j: int) -> Tuple[int, int]:
        b = int(self._block_of[j])
        return b, int(self._starts[b])

    def _column_window(self, j: int) -> Tuple[int, np.ndarray]:
        b, lo = self._locate(j)
        return lo, self._blocks[b][:, j - lo].copy()

    def _downdate(self, j: int, pivot: float, lo: int, column: np.ndarray) -> None:
        b, _ = self._locate(j)
        kernels.outer_downdate(self._blocks[b], column, pivot)

    def _zero_index(self, j: int) -> None:
        b, lo = self._locate(j)
        self._blocks[b][j - lo, :] = 0.0
        self._blocks[b][:, j - lo] = 0.0

    def _current_matvec(self, w: np.ndarray) -> np.ndarray:
        out = np.empty(self._n, dtype=self._dtype)
        for b, mat in enumerate(self._blocks):
            lo, hi = self._starts[b], self._starts[b + 1]
            out[lo:hi] = mat @ w[lo:hi]
        return out

    def _dense_working_matrix(self) -> np.ndarray:
        dense = np.zeros((self._n, self._n), dtype=float)
        for b, mat in enumerate(self._blocks):
            lo, hi = self._starts[b], self._starts[b + 1]
            dense[lo:hi, lo:hi] = mat
        return dense

    def _copy_storage_into(self, clone: "BlockConditionalGaussian") -> None:
        clone._blocks = [m.copy() for m in self._blocks]
        clone._starts = self._starts
        clone._block_of = self._block_of


class LowRankConditionalGaussian(_StructuredConditionalBase):
    """Low-rank engine: Woodbury downdate of the r x r capacity matrix.

    State is ``Sigma|S = diag(d) + U M U^T`` with cleaned rows of ``U`` (and
    entries of ``d``) zeroed.  Conditioning on ``j`` with column
    ``c = d_j e_j + U (M u_j^T)`` updates only
    ``M <- M - (M u_j^T)(u_j M) / pivot`` — the parts of ``c c^T / pivot``
    involving ``e_j`` vanish when row/column ``j`` is zeroed afterwards, so
    the representation stays exact.  O(n r + r^2) per step.
    """

    def __init__(
        self,
        structure: LowRankCovariance,
        weights: Optional[Sequence[float]] = None,
        conditional: bool = True,
        dtype=None,
    ):
        if dtype is None:
            dtype = kernels.get_kernel_dtype()
        self._d = structure._d.astype(dtype, copy=True)
        self._U = structure._U.astype(dtype, copy=True)
        self._M = structure._M.astype(dtype, copy=True)
        super().__init__(
            structure.size, structure.diagonal(), weights, conditional, dtype=dtype
        )

    @property
    def rank(self) -> int:
        """Number of latent factors ``r`` (columns of ``U``)."""
        return int(self._U.shape[1])

    def _column_window(self, j: int) -> Tuple[int, np.ndarray]:
        column = self._U @ (self._M @ self._U[j])
        column[j] += self._d[j]
        return 0, column

    def _downdate(self, j: int, pivot: float, lo: int, column: np.ndarray) -> None:
        mu = self._M @ self._U[j]
        self._M -= np.outer(mu, mu) / pivot

    def _zero_index(self, j: int) -> None:
        self._U[j, :] = 0.0
        self._d[j] = 0.0

    def _current_matvec(self, w: np.ndarray) -> np.ndarray:
        return self._d * w + self._U @ (self._M @ (self._U.T @ w))

    def _dense_working_matrix(self) -> np.ndarray:
        return np.diag(self._d) + self._U @ self._M @ self._U.T

    def _copy_storage_into(self, clone: "LowRankConditionalGaussian") -> None:
        clone._d = self._d.copy()
        clone._U = self._U.copy()
        clone._M = self._M.copy()
