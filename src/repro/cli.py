"""Command-line interface: regenerate any of the paper's experiments.

Examples
--------
::

    python -m repro.cli list
    python -m repro.cli figure1 --dataset adoptions --budgets 0.05 0.1 0.3
    python -m repro.cli figure3 --generator URx --gamma 200
    python -m repro.cli figure11 --gamma 0.7
    python -m repro.cli figure12 --repeats 10
    python -m repro.cli counters --dataset cdc_firearms

Every subcommand prints the same rows the corresponding paper figure plots.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments import figures
from repro.experiments.reporting import format_rows, format_series_table

__all__ = ["build_parser", "main"]

_DEFAULT_BUDGETS = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8]

_EXPERIMENTS = {
    "figure1": "Variance in claim fairness (Adoptions / CDC-firearms / CDC-causes)",
    "figure2": "Expected variance of uniqueness on the CDC datasets",
    "figure3": "Expected variance of uniqueness on URx / LNx / SMx",
    "figure6": "Absolute improvement of GreedyMinVar over GreedyNaive",
    "figure7": "Expected variance of robustness (fragility)",
    "figure8": "Effectiveness in action (CDC-causes)",
    "figure9": "Effectiveness in action (synthetic)",
    "figure10": "GreedyMinVar running time",
    "figure11": "Handling dependency (correlated errors)",
    "figure12": "Competing objectives (MinVar vs MaxPr)",
    "counters": "Counterargument discovery case study (Section 4.3)",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Selecting Data to Clean for Fact Checking'.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the available experiments")

    def add_budgets(p):
        p.add_argument(
            "--budgets",
            type=float,
            nargs="+",
            default=_DEFAULT_BUDGETS,
            help="budget fractions to sweep (default: %(default)s)",
        )

    p1 = subparsers.add_parser("figure1", help=_EXPERIMENTS["figure1"])
    p1.add_argument("--dataset", choices=["adoptions", "cdc_firearms", "cdc_causes"], default="adoptions")
    p1.add_argument("--no-random", action="store_true", help="skip the Random baseline")
    add_budgets(p1)

    p2 = subparsers.add_parser("figure2", help=_EXPERIMENTS["figure2"])
    p2.add_argument("--dataset", choices=["firearms", "causes"], default="firearms")
    p2.add_argument("--gamma", type=float, default=None)
    add_budgets(p2)

    p3 = subparsers.add_parser("figure3", help=_EXPERIMENTS["figure3"])
    p3.add_argument("--generator", choices=["URx", "LNx", "SMx"], default="URx")
    p3.add_argument("--gamma", type=float, default=200.0)
    p3.add_argument("--n", type=int, default=40)
    add_budgets(p3)

    p6 = subparsers.add_parser("figure6", help=_EXPERIMENTS["figure6"])
    p6.add_argument("--generator", choices=["URx", "LNx", "SMx"], default="URx")
    p6.add_argument("--gammas", type=float, nargs="+", default=[50.0, 150.0, 200.0, 300.0])
    add_budgets(p6)

    p7 = subparsers.add_parser("figure7", help=_EXPERIMENTS["figure7"])
    p7.add_argument("--dataset", default="cdc_firearms")
    p7.add_argument("--gamma", type=float, default=None)
    p7.add_argument("--n", type=int, default=100)
    add_budgets(p7)

    p8 = subparsers.add_parser("figure8", help=_EXPERIMENTS["figure8"])
    add_budgets(p8)

    p9 = subparsers.add_parser("figure9", help=_EXPERIMENTS["figure9"])
    p9.add_argument("--generator", choices=["URx", "LNx", "SMx"], default="URx")
    p9.add_argument("--gamma", type=float, default=100.0)
    p9.add_argument("--n", type=int, default=40)
    add_budgets(p9)

    p10 = subparsers.add_parser("figure10", help=_EXPERIMENTS["figure10"])
    p10.add_argument("--n", type=int, default=2000)
    p10.add_argument("--sizes", type=int, nargs="+", default=[500, 1000, 2000, 4000, 10000])

    p11 = subparsers.add_parser("figure11", help=_EXPERIMENTS["figure11"])
    p11.add_argument("--gamma", type=float, default=0.7)
    p11.add_argument("--no-opt", action="store_true", help="skip the exhaustive OPT baseline")
    add_budgets(p11)

    p12 = subparsers.add_parser("figure12", help=_EXPERIMENTS["figure12"])
    p12.add_argument("--repeats", type=int, default=10)
    p12.add_argument("--tau-in-stds", type=float, default=1.0)
    add_budgets(p12)

    pc = subparsers.add_parser("counters", help=_EXPERIMENTS["counters"])
    pc.add_argument("--dataset", default="cdc_firearms")
    pc.add_argument("--seed", type=int, default=2)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        rows = [{"experiment": name, "description": text} for name, text in _EXPERIMENTS.items()]
        print(format_rows(rows, title="Available experiments (run: python -m repro.cli <experiment> --help)"))
        return 0

    if args.command == "figure1":
        result = figures.figure1_fairness(
            args.dataset, budget_fractions=args.budgets, include_random=not args.no_random
        )
        print(format_series_table(result.budget_fractions, result.series, title=result.description))
        return 0

    if args.command == "figure2":
        result = figures.figure2_uniqueness_cdc(
            args.dataset, gamma=args.gamma, budget_fractions=args.budgets
        )
        print(format_series_table(result.budget_fractions, result.series, title=result.description))
        return 0

    if args.command == "figure3":
        result = figures.figure3to5_uniqueness_synthetic(
            args.generator, gamma=args.gamma, n=args.n, budget_fractions=args.budgets
        )
        print(format_series_table(result.budget_fractions, result.series, title=result.description))
        return 0

    if args.command == "figure6":
        rows = figures.figure6_absolute_improvement(
            generator=args.generator, gammas=args.gammas, budget_fractions=args.budgets
        )
        print(format_rows(rows, title="Figure 6: absolute improvement of GreedyMinVar over GreedyNaive"))
        return 0

    if args.command == "figure7":
        result = figures.figure7_robustness(
            args.dataset, gamma=args.gamma, n=args.n, budget_fractions=args.budgets
        )
        print(format_series_table(result.budget_fractions, result.series, title=result.description))
        return 0

    if args.command == "figure8":
        result = figures.figure8_in_action_cdc(budget_fractions=args.budgets)
        print(format_rows(result.as_rows(), title="Figure 8: estimated duplicity (CDC-causes)"))
        return 0

    if args.command == "figure9":
        result = figures.figure9_in_action_synthetic(
            args.generator, gamma=args.gamma, n=args.n, budget_fractions=args.budgets
        )
        print(format_rows(result.as_rows(), title="Figure 9: estimated duplicity (synthetic)"))
        return 0

    if args.command == "figure10":
        by_budget, by_size = figures.figure10_efficiency(n=args.n, sizes=args.sizes)
        print(format_rows(by_budget.as_rows(), title="Figure 10a: running time vs budget"))
        print()
        print(format_rows(by_size.as_rows(), title="Figure 10b: running time vs dataset size"))
        return 0

    if args.command == "figure11":
        result = figures.figure11_dependency(
            gamma=args.gamma, budget_fractions=args.budgets, include_opt=not args.no_opt
        )
        print(format_series_table(result.budget_fractions, result.series, title=result.description))
        return 0

    if args.command == "figure12":
        result = figures.figure12_competing_objectives(
            budget_fractions=args.budgets, repeats=args.repeats, tau_in_stds=args.tau_in_stds
        )
        print(format_rows(result.as_rows(), title="Figure 12: competing objectives"))
        return 0

    if args.command == "counters":
        result = figures.counters_case_study(args.dataset, seed=args.seed)
        print(format_rows(result.as_rows(), title="Section 4.3 case study: counterargument discovery"))
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
