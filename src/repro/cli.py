"""Command-line interface: regenerate any of the paper's experiments.

Examples
--------
::

    python -m repro.cli list
    python -m repro.cli figure1 --dataset adoptions --budgets 0.05 0.1 0.3
    python -m repro.cli figure3 --generator URx --gamma 200
    python -m repro.cli figure11 --gamma 0.7
    python -m repro.cli figure12 --repeats 10
    python -m repro.cli counters --dataset cdc_firearms
    python -m repro.cli matrix --workloads all --solvers greedy_minvar,random
    python -m repro.cli store run --store plans.db --events 50
    python -m repro.cli store resume --store plans.db
    python -m repro.cli store verify --store plans.db
    python -m repro.cli chaos --faults '{"kernel": 0.1, "store": 0.2}'

Every subcommand prints the same rows the corresponding paper figure plots.
The ``store`` subcommand runs a journal with crash-safe persistence (and can
resume after a kill); ``chaos`` replays under deterministic fault injection
and reports the degradation counters plus plan divergence (always zero).

The subcommands are not wired by hand: they are derived from the experiment
registry (:mod:`repro.experiments.registry`), populated by the declarative
specs in :mod:`repro.experiments.specs`.  Registering a new experiment there
makes it appear here automatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.registry import experiment_specs, get_experiment
from repro.experiments.reporting import format_rows
# Importing the specs module populates the experiment registry.
from repro.experiments.specs import DEFAULT_CLI_BUDGETS

__all__ = ["build_parser", "main"]

# Backwards-compatible alias for the pre-registry module constant.
_DEFAULT_BUDGETS = DEFAULT_CLI_BUDGETS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Selecting Data to Clean for Fact Checking'.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the available experiments")

    for spec in experiment_specs().values():
        subparser = subparsers.add_parser(spec.name, help=spec.description)
        spec.configure_parser(subparser)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        rows = [
            {"experiment": spec.name, "description": spec.description}
            for spec in experiment_specs().values()
        ]
        print(format_rows(rows, title="Available experiments (run: python -m repro.cli <experiment> --help)"))
        return 0

    try:
        spec = get_experiment(args.command)
    except KeyError:
        parser.error(f"unknown command {args.command!r}")
        return 2

    print(spec.run(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
