"""The Adoptions dataset (NYC adoptions, 1989--2014).

The paper derives this dataset from the number of adoptions in New York City
during 1989--2014 and attaches a synthetic error model: each yearly count
``X_i ~ N(u_i, sigma_i^2)`` with ``sigma_i ~ U[1, 50]`` and a cleaning cost
``c_i ~ U[1, 100]``.  The raw city numbers are not published with the paper,
so we ship a faithful reconstruction: a yearly series at the same scale
(thousands of adoptions per year) with the pronounced mid-1990s rise and
subsequent decline that made the original Giuliani claim checkable.  The
algorithms only consume ``(u_i, sigma_i, c_i)``, so the reconstruction
preserves the behaviour the experiments measure (see DESIGN.md, Section 5).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.costs import uniform_costs
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = ["ADOPTIONS_YEARS", "ADOPTIONS_COUNTS", "load_adoptions"]

ADOPTIONS_YEARS: List[int] = list(range(1989, 2015))

# Reconstructed yearly adoption counts for New York City, 1989-2014.  The
# series rises sharply through the mid-1990s (the period the Giuliani claim
# cherry-picks), peaks around 1997-1999 and declines afterwards.
ADOPTIONS_COUNTS: List[float] = [
    1784.0,  # 1989
    1821.0,  # 1990
    1935.0,  # 1991
    2113.0,  # 1992
    2367.0,  # 1993
    2752.0,  # 1994
    3105.0,  # 1995
    3411.0,  # 1996
    3829.0,  # 1997
    3962.0,  # 1998
    3896.0,  # 1999
    3675.0,  # 2000
    3392.0,  # 2001
    3120.0,  # 2002
    2911.0,  # 2003
    2702.0,  # 2004
    2555.0,  # 2005
    2388.0,  # 2006
    2246.0,  # 2007
    2104.0,  # 2008
    1987.0,  # 2009
    1852.0,  # 2010
    1741.0,  # 2011
    1655.0,  # 2012
    1562.0,  # 2013
    1481.0,  # 2014
]


def load_adoptions(
    seed: int = 7,
    sigma_low: float = 1.0,
    sigma_high: float = 50.0,
    cost_low: float = 1.0,
    cost_high: float = 100.0,
) -> UncertainDatabase:
    """Build the Adoptions uncertain database.

    Standard deviations are drawn uniformly from ``[sigma_low, sigma_high]``
    and costs from ``[cost_low, cost_high]``, exactly the paper's error and
    cost models.  ``seed`` makes the draw reproducible.
    """
    rng = np.random.default_rng(seed)
    sigmas = rng.uniform(sigma_low, sigma_high, size=len(ADOPTIONS_COUNTS))
    costs = uniform_costs(len(ADOPTIONS_COUNTS), cost_low, cost_high, rng)
    objects = [
        UncertainObject(
            name=f"adoptions_{year}",
            current_value=count,
            distribution=NormalSpec(mean=count, std=float(sigma)),
            cost=cost,
            label=f"NYC adoptions in {year}",
        )
        for year, count, sigma, cost in zip(ADOPTIONS_YEARS, ADOPTIONS_COUNTS, sigmas, costs)
    ]
    return UncertainDatabase(objects)
