"""Datasets used by the paper's evaluation (reconstructions; see DESIGN.md §5)."""

from repro.datasets.adoptions import ADOPTIONS_YEARS, ADOPTIONS_COUNTS, load_adoptions
from repro.datasets.cdc import (
    CDC_YEARS,
    CDC_FIREARM_ESTIMATES,
    CDC_CAUSE_ESTIMATES,
    load_cdc_firearms,
    load_cdc_causes,
)
from repro.datasets.synthetic import (
    generate_urx,
    generate_lnx,
    generate_smx,
    urx_distribution,
    lnx_distribution,
    smx_distribution,
    SYNTHETIC_GENERATORS,
    DISTRIBUTION_FAMILIES,
)
from repro.datasets.costs import (
    uniform_costs,
    recency_decaying_costs,
    unit_costs,
    extreme_costs,
    value_proportional_costs,
    heavy_tailed_costs,
    budget_adversarial_costs,
)

__all__ = [
    "ADOPTIONS_YEARS",
    "ADOPTIONS_COUNTS",
    "load_adoptions",
    "CDC_YEARS",
    "CDC_FIREARM_ESTIMATES",
    "CDC_CAUSE_ESTIMATES",
    "load_cdc_firearms",
    "load_cdc_causes",
    "generate_urx",
    "generate_lnx",
    "generate_smx",
    "urx_distribution",
    "lnx_distribution",
    "smx_distribution",
    "SYNTHETIC_GENERATORS",
    "DISTRIBUTION_FAMILIES",
    "uniform_costs",
    "recency_decaying_costs",
    "unit_costs",
    "extreme_costs",
    "value_proportional_costs",
    "heavy_tailed_costs",
    "budget_adversarial_costs",
]
