"""Cleaning-cost generators shared by the dataset builders.

The paper uses three cost models: uniform random costs (Adoptions and the
synthetic datasets), recency-decaying costs (the CDC datasets, where older
historical data is more expensive to re-acquire), and unit costs (some of the
theoretical variants).  All generators take an explicit random generator so
datasets are reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["uniform_costs", "recency_decaying_costs", "unit_costs", "extreme_costs"]


def uniform_costs(
    n: int, low: float, high: float, rng: np.random.Generator
) -> List[float]:
    """Costs drawn uniformly at random from ``[low, high]``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    return [float(c) for c in rng.uniform(low, high, size=n)]


def recency_decaying_costs(
    n: int,
    oldest_band: tuple = (195.0, 200.0),
    band_width: float = 5.0,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Costs that decrease with recency (the CDC cost model of Section 4).

    Object 0 is the oldest year and gets a cost in ``oldest_band``
    (195--200 by default); each subsequent year's band shifts down by
    ``band_width`` (190--195 for the next year, and so on), never dropping
    below ``(band_width, 2 * band_width)``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    low0, high0 = oldest_band
    if not 0 < low0 < high0:
        raise ValueError("oldest_band must satisfy 0 < low < high")
    costs = []
    for i in range(n):
        low = max(low0 - band_width * i, band_width)
        high = max(high0 - band_width * i, 2.0 * band_width)
        costs.append(float(rng.uniform(low, high)))
    return costs


def unit_costs(n: int) -> List[float]:
    """Every object costs 1 (the setting of the bi-criteria variant)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0] * n


def extreme_costs(
    n: int, low: float, high: float, rng: np.random.Generator, p_high: float = 0.5
) -> List[float]:
    """Bimodal costs: each object costs either ``low`` or ``high``.

    The paper mentions this as an alternative synthetic cost model that led to
    the same conclusions.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    if not 0.0 <= p_high <= 1.0:
        raise ValueError("p_high must be in [0, 1]")
    choices = rng.random(n) < p_high
    return [float(high if c else low) for c in choices]
