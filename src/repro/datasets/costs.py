"""Cleaning-cost generators shared by the dataset builders.

The paper uses three cost models: uniform random costs (Adoptions and the
synthetic datasets), recency-decaying costs (the CDC datasets, where older
historical data is more expensive to re-acquire), and unit costs (some of the
theoretical variants).  All generators take an explicit random generator so
datasets are reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "uniform_costs",
    "recency_decaying_costs",
    "unit_costs",
    "extreme_costs",
    "value_proportional_costs",
    "heavy_tailed_costs",
    "budget_adversarial_costs",
]


def uniform_costs(
    n: int, low: float, high: float, rng: np.random.Generator
) -> List[float]:
    """Costs drawn uniformly at random from ``[low, high]``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    return [float(c) for c in rng.uniform(low, high, size=n)]


def recency_decaying_costs(
    n: int,
    oldest_band: tuple = (195.0, 200.0),
    band_width: float = 5.0,
    rng: Optional[np.random.Generator] = None,
) -> List[float]:
    """Costs that decrease with recency (the CDC cost model of Section 4).

    Object 0 is the oldest year and gets a cost in ``oldest_band``
    (195--200 by default); each subsequent year's band shifts down by
    ``band_width`` (190--195 for the next year, and so on), never dropping
    below ``(band_width, 2 * band_width)``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    low0, high0 = oldest_band
    if not 0 < low0 < high0:
        raise ValueError("oldest_band must satisfy 0 < low < high")
    costs = []
    for i in range(n):
        low = max(low0 - band_width * i, band_width)
        high = max(high0 - band_width * i, 2.0 * band_width)
        costs.append(float(rng.uniform(low, high)))
    return costs


def unit_costs(n: int) -> List[float]:
    """Every object costs 1 (the setting of the bi-criteria variant)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0] * n


def value_proportional_costs(
    values: Sequence[float],
    low: float = 1.0,
    high: float = 10.0,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 0.1,
) -> List[float]:
    """Costs proportional to the magnitude of each object's current value.

    Big numbers are reported by big surveys, and re-running a big survey is
    expensive: the cost of object ``i`` scales linearly with ``|values[i]|``,
    mapped onto ``[low, high]``, with multiplicative jitter of ``±jitter``
    so ties do not produce degenerate selection orders.  A constant value
    vector degrades gracefully to mid-range costs.
    """
    magnitudes = np.abs(np.asarray(values, dtype=float))
    if magnitudes.size == 0:
        raise ValueError("values must be non-empty")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    spread = magnitudes.max() - magnitudes.min()
    if spread <= 0:
        scaled = np.full(magnitudes.shape, 0.5)
    else:
        scaled = (magnitudes - magnitudes.min()) / spread
    costs = low + scaled * (high - low)
    if jitter > 0:
        rng = rng if rng is not None else np.random.default_rng(0)
        costs = costs * rng.uniform(1.0 - jitter, 1.0 + jitter, size=costs.size)
    return [float(c) for c in np.clip(costs, low * (1.0 - jitter), None)]


def heavy_tailed_costs(
    n: int,
    rng: np.random.Generator,
    low: float = 1.0,
    alpha: float = 1.5,
    cap: float = 200.0,
) -> List[float]:
    """Pareto-tailed costs: most objects are cheap, a few are very expensive.

    ``cost_i = low * (1 + Pareto(alpha))`` capped at ``cap`` — the regime
    where greedy benefit/cost ratios and the Algorithm-1 single-item
    safeguard genuinely interact (one expensive object can dominate the
    budget).  ``alpha`` below 2 gives an infinite-variance tail.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if low <= 0:
        raise ValueError("low must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    draws = rng.pareto(alpha, size=n)
    return [float(c) for c in np.clip(low * (1.0 + draws), low, cap)]


def budget_adversarial_costs(
    variances: Sequence[float],
    low: float = 1.0,
    high: float = 10.0,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 0.05,
) -> List[float]:
    """Costs that rise with the object's variance rank (adversarial to greedy).

    The most informative objects (largest variance) are exactly the most
    expensive ones, compressing the benefit/cost ratios that cost-aware
    greedy strategies exploit; cost-blind baselines blow the budget on a few
    high-variance objects while cost-aware ones must weigh breadth against
    depth.  Ranks (not raw variances) are mapped onto ``[low, high]`` so the
    shape is scale-free, with optional multiplicative jitter.
    """
    variances = np.asarray(variances, dtype=float)
    if variances.size == 0:
        raise ValueError("variances must be non-empty")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    order = np.argsort(np.argsort(variances, kind="stable"), kind="stable")
    if variances.size == 1:
        scaled = np.array([1.0])
    else:
        scaled = order / (variances.size - 1)
    costs = low + scaled * (high - low)
    if jitter > 0:
        rng = rng if rng is not None else np.random.default_rng(0)
        costs = costs * rng.uniform(1.0 - jitter, 1.0 + jitter, size=costs.size)
    return [float(c) for c in np.clip(costs, low * (1.0 - jitter), None)]


def extreme_costs(
    n: int, low: float, high: float, rng: np.random.Generator, p_high: float = 0.5
) -> List[float]:
    """Bimodal costs: each object costs either ``low`` or ``high``.

    The paper mentions this as an alternative synthetic cost model that led to
    the same conclusions.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0 < low <= high:
        raise ValueError("need 0 < low <= high")
    if not 0.0 <= p_high <= 1.0:
        raise ValueError("p_high must be in [0, 1]")
    choices = rng.random(n) < p_high
    return [float(high if c else low) for c in choices]
