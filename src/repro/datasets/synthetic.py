"""Synthetic datasets URx, LNx and SMx (Section 4).

Each object gets a discrete distribution whose support size is drawn
uniformly from {1, ..., 6}; the three generators differ in how support values
and probabilities are chosen:

* **URx** — "fairly random": support values uniform without replacement from
  [1, 100], probabilities proportional to U(0, 1] draws.
* **LNx** — skewed unimodal: a log-normal with ``mu = 0`` and
  ``sigma ~ U(0, 1]`` is quantilized into equal-probability intervals; support
  points sit near the right ends of the intervals and probabilities are
  proportional to the log-normal density there.
* **SMx** — multimodal: support values as URx, probabilities proportional to
  draws that are either very low (0, 0.1] or very high [0.9, 1).

Cleaning costs are uniform in [1, 10] (the paper's default synthetic cost
model); current values are drawn from each object's distribution.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.datasets.costs import uniform_costs
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import DiscreteDistribution
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "generate_urx",
    "generate_lnx",
    "generate_smx",
    "urx_distribution",
    "lnx_distribution",
    "smx_distribution",
    "SYNTHETIC_GENERATORS",
    "DISTRIBUTION_FAMILIES",
]


def _support_size(rng: np.random.Generator, max_support: int = 6) -> int:
    return int(rng.integers(1, max_support + 1))


def _urx_distribution(rng: np.random.Generator, max_support: int) -> DiscreteDistribution:
    size = _support_size(rng, max_support)
    values = rng.choice(np.arange(1, 101), size=size, replace=False).astype(float)
    probabilities = rng.uniform(1e-6, 1.0, size=size)
    return DiscreteDistribution(values, probabilities)


def _lnx_distribution(rng: np.random.Generator, max_support: int) -> DiscreteDistribution:
    size = _support_size(rng, max_support)
    sigma = float(rng.uniform(1e-3, 1.0))
    # Quantilize into `size` equal-probability intervals and take points near
    # the right end of each interval (the paper's construction).
    quantiles = (np.arange(1, size + 1) - 0.05) / size
    quantiles = np.clip(quantiles, 1e-6, 1 - 1e-9)
    values = np.exp(sigma * _normal_ppf(quantiles))
    density = _lognormal_pdf(values, sigma)
    return DiscreteDistribution(values, density + 1e-12)


def _smx_distribution(rng: np.random.Generator, max_support: int) -> DiscreteDistribution:
    size = _support_size(rng, max_support)
    values = rng.choice(np.arange(1, 101), size=size, replace=False).astype(float)
    low_or_high = rng.random(size) < 0.5
    probabilities = np.where(
        low_or_high,
        rng.uniform(1e-3, 0.1, size=size),
        rng.uniform(0.9, 1.0, size=size),
    )
    return DiscreteDistribution(values, probabilities)


def _normal_ppf(q: np.ndarray) -> np.ndarray:
    from scipy import stats

    return stats.norm.ppf(q)


def _lognormal_pdf(x: np.ndarray, sigma: float) -> np.ndarray:
    from scipy import stats

    return stats.lognorm.pdf(x, s=sigma)


def urx_distribution(rng: np.random.Generator, max_support: int = 6) -> DiscreteDistribution:
    """One URx per-object error model (uniform values, random probabilities)."""
    return _urx_distribution(rng, max_support)


def lnx_distribution(rng: np.random.Generator, max_support: int = 6) -> DiscreteDistribution:
    """One LNx per-object error model (quantilized log-normal, skewed unimodal)."""
    return _lnx_distribution(rng, max_support)


def smx_distribution(rng: np.random.Generator, max_support: int = 6) -> DiscreteDistribution:
    """One SMx per-object error model (multimodal low/high probability weights)."""
    return _smx_distribution(rng, max_support)


#: Per-object discrete error-model factories, keyed by family name.  Workload
#: generators compose these with cost models and correlation regimes; the
#: whole-database generators above are the uniform-cost specializations.
DISTRIBUTION_FAMILIES = {
    "URx": urx_distribution,
    "LNx": lnx_distribution,
    "SMx": smx_distribution,
}


def _generate(
    n: int,
    seed: int,
    distribution_factory: Callable[[np.random.Generator, int], DiscreteDistribution],
    prefix: str,
    max_support: int,
    cost_low: float,
    cost_high: float,
) -> UncertainDatabase:
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    costs = uniform_costs(n, cost_low, cost_high, rng)
    objects: List[UncertainObject] = []
    for i in range(n):
        distribution = distribution_factory(rng, max_support)
        current = float(distribution.sample(rng))
        objects.append(
            UncertainObject(
                name=f"{prefix}_{i:05d}",
                current_value=current,
                distribution=distribution,
                cost=costs[i],
                label=f"{prefix} synthetic value {i}",
            )
        )
    return UncertainDatabase(objects)


def generate_urx(
    n: int = 40,
    seed: int = 0,
    max_support: int = 6,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
) -> UncertainDatabase:
    """URx synthetic dataset with ``n`` uncertain values."""
    return _generate(n, seed, _urx_distribution, "urx", max_support, cost_low, cost_high)


def generate_lnx(
    n: int = 40,
    seed: int = 0,
    max_support: int = 6,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
) -> UncertainDatabase:
    """LNx synthetic dataset (skewed, unimodal log-normal-derived values)."""
    return _generate(n, seed, _lnx_distribution, "lnx", max_support, cost_low, cost_high)


def generate_smx(
    n: int = 40,
    seed: int = 0,
    max_support: int = 6,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
) -> UncertainDatabase:
    """SMx synthetic dataset (multimodal low/high probability weights)."""
    return _generate(n, seed, _smx_distribution, "smx", max_support, cost_low, cost_high)


SYNTHETIC_GENERATORS = {
    "URx": generate_urx,
    "LNx": generate_lnx,
    "SMx": generate_smx,
}
