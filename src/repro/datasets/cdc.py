"""CDC-style datasets: nonfatal-injury estimates with published standard errors.

The paper uses two real datasets from the CDC WISQARS nonfatal-injury reports:

* **CDC-firearms** — estimated nonfatal firearm injuries in the USA,
  2001--2017 (17 values), with the published standard errors;
* **CDC-causes** — the same years for four causes (firearms, transportation,
  drowning, falls), 68 values total.

The raw extracts are not redistributable offline, so we reconstruct series at
realistic magnitudes with per-year standard errors of the same relative size
(CDC sampling errors of a few percent).  CDC's sampling design makes the
errors independent and approximately normal, which is exactly the modelling
assumption the paper relies on.  Cleaning costs decrease with recency (older
data costs more to re-verify): 195--200 for 2001 down by five per year.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.datasets.costs import recency_decaying_costs
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "CDC_YEARS",
    "CDC_FIREARM_ESTIMATES",
    "CDC_CAUSE_ESTIMATES",
    "load_cdc_firearms",
    "load_cdc_causes",
]

CDC_YEARS: List[int] = list(range(2001, 2018))

# Reconstructed national estimates of nonfatal firearm injuries (counts) and
# their standard errors, 2001-2017.  Magnitudes and ~6-9% relative standard
# errors mirror the published WISQARS figures.
CDC_FIREARM_ESTIMATES: List[tuple] = [
    (63012.0, 4410.0),  # 2001
    (58841.0, 4120.0),  # 2002
    (65834.0, 4608.0),  # 2003
    (64389.0, 4507.0),  # 2004
    (69825.0, 4888.0),  # 2005
    (71417.0, 5000.0),  # 2006
    (69863.0, 4890.0),  # 2007
    (78622.0, 5504.0),  # 2008
    (66769.0, 4674.0),  # 2009
    (73505.0, 5145.0),  # 2010
    (73883.0, 5172.0),  # 2011
    (81396.0, 5698.0),  # 2012
    (84258.0, 5898.0),  # 2013
    (81034.0, 5672.0),  # 2014
    (84997.0, 5950.0),  # 2015
    (116414.0, 8149.0),  # 2016
    (95032.0, 6652.0),  # 2017
]

# Reconstructed estimates for three additional causes over the same period.
# Transportation injuries dwarf the other categories; drownings are small.
CDC_CAUSE_ESTIMATES: Dict[str, List[tuple]] = {
    "firearms": CDC_FIREARM_ESTIMATES,
    "transportation": [
        (2914000.0, 87420.0), (2865000.0, 85950.0), (2790000.0, 83700.0),
        (2724000.0, 81720.0), (2699000.0, 80970.0), (2575000.0, 77250.0),
        (2523000.0, 75690.0), (2421000.0, 72630.0), (2322000.0, 69660.0),
        (2298000.0, 68940.0), (2354000.0, 70620.0), (2412000.0, 72360.0),
        (2333000.0, 69990.0), (2407000.0, 72210.0), (2495000.0, 74850.0),
        (2538000.0, 76140.0), (2476000.0, 74280.0),
    ],
    "drowning": [
        (4823.0, 530.0), (4712.0, 518.0), (4598.0, 505.0), (4655.0, 512.0),
        (4509.0, 496.0), (4387.0, 482.0), (4452.0, 489.0), (4311.0, 474.0),
        (4278.0, 470.0), (4195.0, 461.0), (4233.0, 465.0), (4148.0, 456.0),
        (4097.0, 450.0), (4052.0, 445.0), (4121.0, 453.0), (4068.0, 447.0),
        (3995.0, 439.0),
    ],
    "falls": [
        (7853000.0, 196325.0), (7921000.0, 198025.0), (8054000.0, 201350.0),
        (8167000.0, 204175.0), (8289000.0, 207225.0), (8354000.0, 208850.0),
        (8421000.0, 210525.0), (8512000.0, 212800.0), (8634000.0, 215850.0),
        (8723000.0, 218075.0), (8841000.0, 221025.0), (8956000.0, 223900.0),
        (9034000.0, 225850.0), (9148000.0, 228700.0), (9265000.0, 231625.0),
        (9371000.0, 234275.0), (9452000.0, 236300.0),
    ],
}


def load_cdc_firearms(seed: int = 11) -> UncertainDatabase:
    """CDC-firearms: 17 yearly firearm-injury estimates with standard errors."""
    rng = np.random.default_rng(seed)
    costs = recency_decaying_costs(len(CDC_YEARS), rng=rng)
    objects = [
        UncertainObject(
            name=f"firearms_{year}",
            current_value=estimate,
            distribution=NormalSpec(mean=estimate, std=stderr),
            cost=cost,
            label=f"Nonfatal firearm injuries in {year}",
        )
        for (year, (estimate, stderr), cost) in zip(CDC_YEARS, CDC_FIREARM_ESTIMATES, costs)
    ]
    return UncertainDatabase(objects)


def load_cdc_causes(seed: int = 13) -> UncertainDatabase:
    """CDC-causes: 4 causes x 17 years = 68 values with standard errors.

    Objects are ordered year-major (all causes for 2001, then 2002, ...), so
    window claims over consecutive indices aggregate across causes within a
    period, matching the paper's "across four categories" claims.
    """
    rng = np.random.default_rng(seed)
    year_costs = recency_decaying_costs(len(CDC_YEARS), rng=rng)
    causes = list(CDC_CAUSE_ESTIMATES)
    objects = []
    for year_index, year in enumerate(CDC_YEARS):
        for cause in causes:
            estimate, stderr = CDC_CAUSE_ESTIMATES[cause][year_index]
            # Costs within a year differ slightly by cause but keep the
            # recency-decaying structure.
            cost = float(year_costs[year_index] * rng.uniform(0.95, 1.05))
            objects.append(
                UncertainObject(
                    name=f"{cause}_{year}",
                    current_value=estimate,
                    distribution=NormalSpec(mean=estimate, std=stderr),
                    cost=cost,
                    label=f"Nonfatal {cause} injuries in {year}",
                )
            )
    return UncertainDatabase(objects)
