"""Parameterized generator families the workload catalog is composed from.

Three orthogonal axes, each a small dispatcher:

* **distribution kinds** (:func:`make_database`) — the discrete paper
  families (URx / LNx / SMx per-object error models), all-normal timelines,
  and mixed databases interleaving normal and discrete error models;
* **cost models** (:func:`make_costs`) — uniform, unit, recency-decaying,
  value-proportional, heavy-tailed (Pareto) and budget-adversarial
  (cost rises with variance rank), built on :mod:`repro.datasets.costs`;
* **correlation regimes** (:func:`make_world_model`) — independent, chain
  (geometrically decaying), block-constant and banded (moving-average)
  covariances over an all-normal database, wrapped in a
  :class:`~repro.uncertainty.correlation.GaussianWorldModel`.

On top sits one new claim shape, :func:`share_of_recent_workload` — the
generalization of the CDC-causes "share of all other causes" claim to an
arbitrary timeline — plus :func:`median_window_sum`, the Gamma heuristic the
figures use (mid-range thresholds are where the uncertainty, and hence the
algorithm differences, are largest).

Everything takes an explicit seed and derives all randomness from one
``np.random.default_rng(seed)`` stream, so a (name, n, seed) triple pins the
workload exactly — the determinism the scenario matrix asserts in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.claims.functions import ClaimFunction, LinearClaim
from repro.claims.perturbations import PerturbationSet, exponential_sensibility
from repro.claims.quality import Bias
from repro.datasets.costs import (
    budget_adversarial_costs,
    heavy_tailed_costs,
    recency_decaying_costs,
    uniform_costs,
    unit_costs,
    value_proportional_costs,
)
from repro.datasets.synthetic import DISTRIBUTION_FAMILIES
from repro.experiments.workloads import Workload
from repro.uncertainty.correlation import (
    GaussianWorldModel,
    banded_covariance,
    block_covariance,
    decaying_covariance,
)
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import DiscreteDistribution, NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = [
    "COST_MODELS",
    "DISTRIBUTION_KINDS",
    "CORRELATION_REGIMES",
    "make_costs",
    "make_database",
    "make_normal_array_database",
    "make_world_model",
    "median_window_sum",
    "recent_share_claim",
    "scale_share_workload",
    "share_of_recent_workload",
]

#: Cost-model names :func:`make_costs` accepts.
COST_MODELS = (
    "uniform",
    "unit",
    "recency",
    "value_proportional",
    "heavy_tailed",
    "budget_adversarial",
)

#: Distribution-kind names :func:`make_database` accepts.
DISTRIBUTION_KINDS = ("urx", "lnx", "smx", "normal", "mixed")

#: Correlation-regime names :func:`make_world_model` accepts.
CORRELATION_REGIMES = ("independent", "chain", "block", "banded")


def make_costs(
    cost_model: str,
    rng: np.random.Generator,
    current_values: Sequence[float],
    variances: Sequence[float],
) -> List[float]:
    """Cleaning costs for one database under the named cost model.

    ``current_values`` and ``variances`` are the already-generated per-object
    statistics — the value-proportional and budget-adversarial models price
    objects off them; the others ignore them.
    """
    n = len(current_values)
    if cost_model == "uniform":
        return uniform_costs(n, 1.0, 10.0, rng)
    if cost_model == "unit":
        return unit_costs(n)
    if cost_model == "recency":
        # Scale the oldest band with n so the budget fractions the matrix
        # sweeps mean comparable selection depths across dataset sizes.
        band = max(5.0, 100.0 / max(n, 1))
        return recency_decaying_costs(
            n, oldest_band=(band * (n - 0.5), band * n + band), band_width=band, rng=rng
        )
    if cost_model == "value_proportional":
        return value_proportional_costs(current_values, rng=rng)
    if cost_model == "heavy_tailed":
        return heavy_tailed_costs(n, rng)
    if cost_model == "budget_adversarial":
        return budget_adversarial_costs(variances, rng=rng)
    raise ValueError(f"unknown cost model {cost_model!r}; known: {COST_MODELS}")


def _normal_marginal(rng: np.random.Generator) -> NormalSpec:
    """One normal error model on the synthetic value scale (values ~ [1, 100])."""
    mean = float(rng.uniform(20.0, 100.0))
    std = float(rng.uniform(2.0, 12.0))
    return NormalSpec(mean=mean, std=std)


def make_database(
    n: int,
    seed: int,
    distribution: str = "urx",
    cost_model: str = "uniform",
    max_support: int = 6,
    prefix: Optional[str] = None,
) -> UncertainDatabase:
    """A synthetic uncertain database crossing a distribution kind with a cost model.

    ``distribution`` is one of :data:`DISTRIBUTION_KINDS`: the three discrete
    paper families (per-object error models from
    :data:`repro.datasets.synthetic.DISTRIBUTION_FAMILIES`), ``normal``
    (normal error models centered at the current reported value, the shape of
    the Adoptions/CDC datasets), or ``mixed`` (even positions normal, odd
    positions URx-discrete — the regime where no single closed form applies).
    Current values are drawn from each object's own error model; all
    randomness comes from one ``default_rng(seed)`` stream.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if distribution not in DISTRIBUTION_KINDS:
        raise ValueError(
            f"unknown distribution kind {distribution!r}; known: {DISTRIBUTION_KINDS}"
        )
    rng = np.random.default_rng(seed)
    prefix = prefix if prefix is not None else distribution

    discrete_factories = {
        "urx": DISTRIBUTION_FAMILIES["URx"],
        "lnx": DISTRIBUTION_FAMILIES["LNx"],
        "smx": DISTRIBUTION_FAMILIES["SMx"],
    }

    distributions: List[object] = []
    currents: List[float] = []
    for i in range(n):
        if distribution == "normal" or (distribution == "mixed" and i % 2 == 0):
            marginal = _normal_marginal(rng)
            current = float(rng.normal(marginal.mean, marginal.std))
            # Center the error model at the reported value (the CDC/Adoptions
            # convention and the Theorem 3.9 assumption).
            marginal = NormalSpec(mean=current, std=marginal.std)
        else:
            factory = discrete_factories["urx" if distribution == "mixed" else distribution]
            marginal = factory(rng, max_support)
            current = float(marginal.sample(rng))
        distributions.append(marginal)
        currents.append(current)

    variances = [float(d.variance) for d in distributions]
    costs = make_costs(cost_model, rng, currents, variances)
    objects = [
        UncertainObject(
            name=f"{prefix}_{i:05d}",
            current_value=currents[i],
            distribution=distributions[i],
            cost=costs[i],
            label=f"{prefix} synthetic value {i}",
        )
        for i in range(n)
    ]
    return UncertainDatabase(objects)


def make_world_model(
    database: UncertainDatabase,
    correlation: str,
    rho: float = 0.7,
    block_size: int = 8,
    bandwidth: int = 4,
    structured: bool = False,
) -> Optional[GaussianWorldModel]:
    """The correlated error model for a database, or ``None`` when independent.

    ``chain`` injects the Section 4.5 geometric decay ``rho**|i-j|``;
    ``block`` correlates consecutive blocks of ``block_size`` objects at
    constant ``rho``; ``banded`` uses the PSD moving-average construction cut
    off beyond lag ``bandwidth``.  Correlation regimes require an all-normal
    database (the model is a multivariate normal over the same marginals);
    the covariances are PSD by construction, so the O(n^3) validation is
    skipped.

    ``structured=True`` stores the ``block``/``banded`` regimes in their
    O(n * block) / O(n * bandwidth) structured representations
    (:class:`~repro.uncertainty.structured.BlockDiagonalCovariance` /
    :class:`~repro.uncertainty.structured.BandedCovariance`) via
    :meth:`GaussianWorldModel.from_structure
    <repro.uncertainty.correlation.GaussianWorldModel.from_structure>`, so
    the dependency solvers dispatch to the banded/block conditioning engines
    and the dense n x n matrix is never allocated — the representation the
    BENCH_scale regimes require.  The values are identical to the dense
    builders.  ``chain`` has no compact structured form (the geometric decay
    is dense and full-rank) and rejects ``structured=True`` explicitly.
    """
    if correlation == "independent":
        return None
    if correlation not in CORRELATION_REGIMES:
        raise ValueError(
            f"unknown correlation regime {correlation!r}; known: {CORRELATION_REGIMES}"
        )
    if not database.all_normal():
        raise ValueError(
            f"correlation regime {correlation!r} needs an all-normal database "
            "(the correlated model is a multivariate normal over the marginals)"
        )
    stds = database.stds
    if structured:
        if correlation == "chain":
            raise ValueError(
                "the chain regime has no structured representation (rho**|i-j| "
                "is dense); use correlation='banded' or 'block', or structured=False"
            )
        from repro.uncertainty.structured import (
            BandedCovariance,
            BlockDiagonalCovariance,
        )

        if correlation == "block":
            structure = BlockDiagonalCovariance.from_equicorrelated(stds, block_size, rho)
        else:
            structure = BandedCovariance.from_moving_average(stds, bandwidth, rho)
        return GaussianWorldModel.from_structure(database.current_values, structure)
    if correlation == "chain":
        covariance = decaying_covariance(stds, rho)
    elif correlation == "block":
        covariance = block_covariance(stds, block_size, rho)
    else:
        covariance = banded_covariance(stds, bandwidth, rho)
    return GaussianWorldModel(database.current_values, covariance, validate=False)


def make_normal_array_database(
    n: int,
    seed: int,
    cost_model: str = "unit",
    prefix: str = "scale",
) -> UncertainDatabase:
    """Array-backed all-normal database for the large-n (BENCH_scale) regimes.

    Same statistical conventions as ``make_database(distribution="normal")``
    — means drawn on the synthetic value scale, stds in [2, 12], the error
    model centered at the reported value — but generated as three vectorized
    draws and stored through
    :meth:`UncertainDatabase.from_normal_arrays
    <repro.uncertainty.database.UncertainDatabase.from_normal_arrays>`, so no
    per-object Python structures exist at n = 10^6.  Only the vectorized
    cost models apply (``unit``/``uniform``).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    stds = rng.uniform(2.0, 12.0, size=n)
    currents = rng.normal(rng.uniform(20.0, 100.0, size=n), stds)
    if cost_model == "unit":
        costs = None
    elif cost_model == "uniform":
        costs = rng.uniform(1.0, 10.0, size=n)
    else:
        raise ValueError(
            f"cost model {cost_model!r} is not vectorized; "
            "array-backed databases support 'unit' and 'uniform'"
        )
    return UncertainDatabase.from_normal_arrays(currents, stds, costs=costs, prefix=prefix)


def recent_share_claim(n: int, period: int = 4, share: float = 0.25) -> LinearClaim:
    """The 'recent period carries a ``share`` of the total' claim as one vector.

    The original claim of :func:`share_of_recent_workload` —
    ``sum(last period) - share * sum(everything earlier) > 0`` — built from a
    dense weight vector in one pass, with no perturbation machinery.  This is
    the linear query the scale workloads and BENCH_scale runs use.
    """
    if not 0 < period < n:
        raise ValueError("period must be positive and smaller than the database")
    weights = np.full(n, -share, dtype=float)
    weights[n - period :] = 1.0
    return LinearClaim.from_vector(weights, label="recent_share")


def scale_share_workload(
    database: UncertainDatabase, period: int = 4, share: float = 0.25
) -> Workload:
    """The recent-share claim wrapped as a minimal linear workload.

    The large-n twin of :func:`share_of_recent_workload`: one
    :func:`recent_share_claim` vector as the query function, a trivial
    single-perturbation set (the claim itself), no measure machinery — the
    shape the scale benchmarks and structured-regime specs run, where every
    per-step cost must stay O(n) or better.
    """
    claim = recent_share_claim(len(database), period=period, share=share)
    perturbations = PerturbationSet(claim, (claim,), (1.0,))
    return Workload(
        database=database,
        query_function=claim,
        perturbations=perturbations,
        description=(
            f"recent-share linear claim at scale "
            f"(last {period} values vs a {share:g} share)"
        ),
    )


def median_window_sum(database: UncertainDatabase, width: int) -> float:
    """Median of the non-overlapping window sums at the current values.

    The default Gamma for "as low/high as Gamma" claims: mid-range thresholds
    (where the threshold indicator can go either way) are where the initial
    uncertainty — and the algorithm differences — are largest.
    """
    values = database.current_values
    n = len(database)
    original_start = n - width
    starts = range(original_start % width, n - width + 1, width)
    sums = [float(values[s : s + width].sum()) for s in starts]
    return float(np.median(sums))


def share_of_recent_workload(
    database: UncertainDatabase,
    period: int = 4,
    share: float = 0.25,
    max_perturbations: int = 16,
    sensibility_rate: float = 1.5,
) -> Workload:
    """Fairness of a "recent period carries at least a ``share`` of the total" claim.

    The generalization of the CDC-causes claim to an arbitrary timeline: the
    original claim asserts ``sum(last period) - share * sum(everything
    earlier) > 0`` and each perturbation makes the same assertion about an
    earlier ``period``-length window (comparing it against everything before
    *it*), with exponentially decaying sensibility.  All claims are linear,
    so the bias measure is linear too and the modular Section 3.2 machinery
    applies — this is the matrix's "linear aggregate" claim shape on
    generated data.
    """
    n = len(database)
    if not 0 < period < n:
        raise ValueError("period must be positive and smaller than the database")

    def period_claim(last_index: int, label: str) -> LinearClaim:
        weights: Dict[int, float] = {}
        start = last_index - period + 1
        for i in range(start, last_index + 1):
            weights[i] = 1.0
        for i in range(0, start):
            weights[i] = -share
        return LinearClaim(weights, label=label)

    original = period_claim(n - 1, label="original")
    claims: List[ClaimFunction] = []
    distances: List[float] = []
    for last_index in range(period, n - 1):
        claims.append(period_claim(last_index, label=f"period_ending_{last_index}"))
        distances.append(float((n - 1) - last_index))
    if len(claims) > max_perturbations:
        order = sorted(range(len(claims)), key=lambda i: distances[i])[:max_perturbations]
        order = sorted(order)
        claims = [claims[i] for i in order]
        distances = [distances[i] for i in order]
    weights = exponential_sensibility(distances, rate=sensibility_rate)
    perturbations = PerturbationSet(original, tuple(claims), tuple(weights))
    bias = Bias(perturbations, database.current_values)
    return Workload(
        database=database,
        query_function=bias,
        perturbations=perturbations,
        description=f"fairness of 'last {period} values carry a {share:g} share' claim",
    )
