"""The registered workload catalog: paper workloads plus generated scenario families.

Importing this module populates the workload registry (the same pattern as
:mod:`repro.experiments.specs` for the experiment registry).  Two groups:

* the four hand-built paper workloads, re-registered on the spec protocol
  with their canonical datasets (``scales_with_n = False`` — the Adoptions
  and CDC timelines have fixed sizes);
* parameterized generated scenarios crossing the axes of
  :mod:`repro.workloads.generators`: five distribution families x six cost
  models x four correlation regimes x three claim shapes (each spec picks one
  point of the cross; together they span every axis value).

Non-linear workloads (duplicity / fragility measures) also carry a linear
MaxPr surrogate — the bias over the same perturbation set, the Section 4.3
pattern — so MaxPr-style and dependency-aware solvers have an explicit
weight vector to work with.
"""

from __future__ import annotations

from typing import Optional

from repro.claims.quality import Bias
from repro.datasets.adoptions import load_adoptions
from repro.datasets.cdc import load_cdc_causes, load_cdc_firearms
from repro.experiments.workloads import (
    Workload,
    cdc_causes_share_workload,
    fairness_window_comparison_workload,
    robustness_workload,
    uniqueness_workload,
)
from repro.workloads.generators import (
    make_database,
    make_normal_array_database,
    make_world_model,
    median_window_sum,
    scale_share_workload,
    share_of_recent_workload,
)
from repro.workloads.spec import register_workload

__all__ = ["DEFAULT_N"]

#: Size used when a scalable spec is built without an explicit ``n``.
DEFAULT_N = 60


def _size(n: Optional[int]) -> int:
    return int(n) if n else DEFAULT_N


def _attach_maxpr_surrogate(workload: Workload) -> Workload:
    """Give a non-linear workload its linear MaxPr surrogate (the bias)."""
    workload.maxpr_function = Bias(
        workload.perturbations, workload.database.current_values
    )
    return workload


# --------------------------------------------------------------------------- #
# The four paper workloads, re-registered on the spec protocol
# --------------------------------------------------------------------------- #
@register_workload(
    name="paper_fairness_adoptions",
    description="Giuliani adoptions window-comparison fairness claim (Figure 1a)",
    family="normal",
    cost_model="uniform",
    correlation="independent",
    claim_shape="window_comparison",
    scales_with_n=False,
    paper_figure="Figure 1a",
)
def _paper_fairness_adoptions(seed: int = 0) -> Workload:
    return fairness_window_comparison_workload(
        load_adoptions(), width=4, later_window_start=4, max_perturbations=18
    )


@register_workload(
    name="paper_fairness_cdc_causes",
    description="CDC-causes 'share of all other causes' fairness claim (Figure 1d)",
    family="normal",
    cost_model="recency",
    correlation="independent",
    claim_shape="linear_aggregate",
    scales_with_n=False,
    paper_figure="Figure 1d",
)
def _paper_fairness_cdc_causes(seed: int = 0) -> Workload:
    return cdc_causes_share_workload(load_cdc_causes())


@register_workload(
    name="paper_uniqueness_cdc_firearms",
    description="CDC-firearms 'as low as Gamma' uniqueness claim (Figure 2a)",
    family="normal",
    cost_model="recency",
    correlation="independent",
    claim_shape="window_threshold",
    scales_with_n=False,
    paper_figure="Figure 2a",
)
def _paper_uniqueness_cdc_firearms(seed: int = 0) -> Workload:
    database = load_cdc_firearms()
    gamma = median_window_sum(database, 2)
    return _attach_maxpr_surrogate(
        uniqueness_workload(database, window_width=2, gamma=gamma, discretize_points=6)
    )


@register_workload(
    name="paper_robustness_cdc_firearms",
    description="CDC-firearms 'as high as Gamma' robustness claim (Figure 7a)",
    family="normal",
    cost_model="recency",
    correlation="independent",
    claim_shape="window_threshold",
    scales_with_n=False,
    paper_figure="Figure 7a",
)
def _paper_robustness_cdc_firearms(seed: int = 0) -> Workload:
    database = load_cdc_firearms()
    gamma = median_window_sum(database, 2)
    return _attach_maxpr_surrogate(
        robustness_workload(database, window_width=2, gamma=gamma, discretize_points=6)
    )


# --------------------------------------------------------------------------- #
# Generated scenarios: discrete families x cost models (independent errors)
# --------------------------------------------------------------------------- #
@register_workload(
    name="fairness_urx_uniform",
    description="window-comparison fairness on a URx timeline, uniform costs",
    family="discrete_uniform",
    cost_model="uniform",
    correlation="independent",
    claim_shape="window_comparison",
)
def _fairness_urx_uniform(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(_size(n), seed, distribution="urx", cost_model="uniform")
    return fairness_window_comparison_workload(database, width=4, later_window_start=4)


@register_workload(
    name="fairness_smx_unit",
    description="window-comparison fairness on a multimodal SMx timeline, unit costs",
    family="discrete_multimodal",
    cost_model="unit",
    correlation="independent",
    claim_shape="window_comparison",
)
def _fairness_smx_unit(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(_size(n), seed, distribution="smx", cost_model="unit")
    return fairness_window_comparison_workload(database, width=4, later_window_start=4)


@register_workload(
    name="uniqueness_lnx_heavy",
    description="'as low as Gamma' uniqueness on a skewed LNx timeline, Pareto-tailed costs",
    family="discrete_lognormal",
    cost_model="heavy_tailed",
    correlation="independent",
    claim_shape="window_threshold",
)
def _uniqueness_lnx_heavy(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(_size(n), seed, distribution="lnx", cost_model="heavy_tailed")
    gamma = median_window_sum(database, 4)
    return _attach_maxpr_surrogate(
        uniqueness_workload(database, window_width=4, gamma=gamma)
    )


@register_workload(
    name="uniqueness_smx_adversarial",
    description="uniqueness on a multimodal SMx timeline with variance-rank (adversarial) costs",
    family="discrete_multimodal",
    cost_model="budget_adversarial",
    correlation="independent",
    claim_shape="window_threshold",
)
def _uniqueness_smx_adversarial(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(
        _size(n), seed, distribution="smx", cost_model="budget_adversarial"
    )
    gamma = median_window_sum(database, 4)
    return _attach_maxpr_surrogate(
        uniqueness_workload(database, window_width=4, gamma=gamma)
    )


@register_workload(
    name="robustness_urx_valueprop",
    description="'as high as Gamma' robustness on a URx timeline, value-proportional costs",
    family="discrete_uniform",
    cost_model="value_proportional",
    correlation="independent",
    claim_shape="window_threshold",
)
def _robustness_urx_valueprop(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(
        _size(n), seed, distribution="urx", cost_model="value_proportional"
    )
    gamma = median_window_sum(database, 4)
    return _attach_maxpr_surrogate(
        robustness_workload(database, window_width=4, gamma=gamma)
    )


# --------------------------------------------------------------------------- #
# Generated scenarios: mixed error models
# --------------------------------------------------------------------------- #
@register_workload(
    name="uniqueness_mixed_uniform",
    description="uniqueness over interleaved normal/discrete error models, uniform costs",
    family="mixed",
    cost_model="uniform",
    correlation="independent",
    claim_shape="window_threshold",
)
def _uniqueness_mixed_uniform(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(_size(n), seed, distribution="mixed", cost_model="uniform")
    gamma = median_window_sum(database, 4)
    return _attach_maxpr_surrogate(
        uniqueness_workload(database, window_width=4, gamma=gamma)
    )


@register_workload(
    name="share_mixed_heavy",
    description="'recent share of the total' fairness over mixed error models, Pareto costs",
    family="mixed",
    cost_model="heavy_tailed",
    correlation="independent",
    claim_shape="linear_aggregate",
)
def _share_mixed_heavy(n: Optional[int] = None, seed: int = 0) -> Workload:
    database = make_database(_size(n), seed, distribution="mixed", cost_model="heavy_tailed")
    return share_of_recent_workload(database, period=4, share=0.25)


# --------------------------------------------------------------------------- #
# Generated scenarios: correlated (multivariate normal) error models
# --------------------------------------------------------------------------- #
@register_workload(
    name="fairness_normal_chain",
    description="window-comparison fairness with chain-decaying error correlation",
    family="normal",
    cost_model="uniform",
    correlation="chain",
    claim_shape="window_comparison",
    defaults={"rho": 0.7},
)
def _fairness_normal_chain(n: Optional[int] = None, seed: int = 0, rho: float = 0.7) -> Workload:
    database = make_database(_size(n), seed, distribution="normal", cost_model="uniform")
    workload = fairness_window_comparison_workload(database, width=4, later_window_start=4)
    workload.world_model = make_world_model(database, "chain", rho=rho)
    return workload


@register_workload(
    name="fairness_normal_block",
    description="window-comparison fairness with block-correlated errors, value-proportional costs",
    family="normal",
    cost_model="value_proportional",
    correlation="block",
    claim_shape="window_comparison",
    defaults={"rho": 0.6, "block_size": 8},
)
def _fairness_normal_block(
    n: Optional[int] = None, seed: int = 0, rho: float = 0.6, block_size: int = 8
) -> Workload:
    database = make_database(
        _size(n), seed, distribution="normal", cost_model="value_proportional"
    )
    workload = fairness_window_comparison_workload(database, width=4, later_window_start=4)
    workload.world_model = make_world_model(database, "block", rho=rho, block_size=block_size)
    return workload


@register_workload(
    name="scale_share_banded",
    description="recent-share claim with banded correlation in the structured "
    "(O(n*bandwidth)) representation — the BENCH_scale dependency regime",
    family="normal",
    cost_model="unit",
    correlation="banded",
    claim_shape="linear_aggregate",
    defaults={"rho": 0.6, "bandwidth": 8},
)
def _scale_share_banded(
    n: Optional[int] = None, seed: int = 0, rho: float = 0.6, bandwidth: int = 8
) -> Workload:
    size = _size(n)
    database = make_normal_array_database(size, seed, cost_model="unit")
    workload = scale_share_workload(database, period=max(2, size // 16), share=0.25)
    workload.world_model = make_world_model(
        database, "banded", rho=rho, bandwidth=min(bandwidth, size - 1), structured=True
    )
    return workload


@register_workload(
    name="scale_share_block",
    description="recent-share claim with block-diagonal correlation in the "
    "structured (per-block dense) representation — scales to large n",
    family="normal",
    cost_model="uniform",
    correlation="block",
    claim_shape="linear_aggregate",
    defaults={"rho": 0.5, "block_size": 8},
)
def _scale_share_block(
    n: Optional[int] = None, seed: int = 0, rho: float = 0.5, block_size: int = 8
) -> Workload:
    size = _size(n)
    database = make_normal_array_database(size, seed, cost_model="uniform")
    workload = scale_share_workload(database, period=max(2, size // 16), share=0.25)
    workload.world_model = make_world_model(
        database, "block", rho=rho, block_size=min(block_size, size), structured=True
    )
    return workload


@register_workload(
    name="share_normal_banded",
    description="'recent share' fairness with banded (moving-average) correlation, recency costs",
    family="normal",
    cost_model="recency",
    correlation="banded",
    claim_shape="linear_aggregate",
    defaults={"rho": 0.9, "bandwidth": 4},
)
def _share_normal_banded(
    n: Optional[int] = None, seed: int = 0, rho: float = 0.9, bandwidth: int = 4
) -> Workload:
    database = make_database(_size(n), seed, distribution="normal", cost_model="recency")
    workload = share_of_recent_workload(database, period=4, share=0.25)
    workload.world_model = make_world_model(
        database, "banded", rho=rho, bandwidth=bandwidth
    )
    return workload
