"""Workload registry: declarative scenario specs and their generator families.

The counterpart of the solver and experiment registries for the *scenario*
axis: a :class:`~repro.workloads.spec.WorkloadSpec` names one combination of
error-model family, cost model, correlation regime and claim shape, and
builds a ready-to-run :class:`~repro.experiments.workloads.Workload` at any
size and seed.  Importing this package registers the full catalog
(:mod:`repro.workloads.catalog`): the four paper workloads on their canonical
datasets plus generated scenarios spanning every axis value.  The scenario
matrix (:mod:`repro.experiments.matrix`) crosses these specs with registered
solvers and budget grids.
"""

from repro.workloads.spec import (
    WorkloadSpec,
    register_workload,
    get_workload_spec,
    available_workloads,
    build_workload,
    coverage_summary,
)
from repro.workloads.generators import (
    COST_MODELS,
    DISTRIBUTION_KINDS,
    CORRELATION_REGIMES,
    make_costs,
    make_database,
    make_world_model,
    median_window_sum,
    share_of_recent_workload,
)
from repro.workloads import catalog  # populates the workload registry
from repro.workloads.catalog import DEFAULT_N

__all__ = [
    "WorkloadSpec",
    "register_workload",
    "get_workload_spec",
    "available_workloads",
    "build_workload",
    "coverage_summary",
    "COST_MODELS",
    "DISTRIBUTION_KINDS",
    "CORRELATION_REGIMES",
    "make_costs",
    "make_database",
    "make_world_model",
    "median_window_sum",
    "share_of_recent_workload",
    "DEFAULT_N",
    "catalog",
]
