"""The workload registry: declarative scenario specs behind the matrix harness.

The paper's evaluation (Figures 1--12) spans many regimes — distribution
families, cost models, correlation structures, claim shapes — but each figure
hard-wires one combination.  A :class:`WorkloadSpec` names one combination as
data: which generator family produced the error models, which cost model
prices the cleaning, whether (and how) errors are correlated, and what shape
the claim takes.  :func:`register_workload` records specs in a global
registry (mirroring the solver and experiment registries), so harnesses like
the scenario matrix (:mod:`repro.experiments.matrix`) can enumerate scenarios
instead of hard-coding them::

    @register_workload(
        name="uniqueness_lnx_heavy",
        description="duplicity over a skewed timeline with Pareto-tailed costs",
        family="discrete_lognormal",
        cost_model="heavy_tailed",
        correlation="independent",
        claim_shape="window_threshold",
    )
    def _build(n: int, seed: int) -> Workload:
        ...

    build_workload("uniqueness_lnx_heavy", n=200, seed=0)   # -> Workload

Builders take ``(n, seed, **params)`` and return a ready-to-run
:class:`~repro.experiments.workloads.Workload`.  Specs over fixed real
datasets (the four paper workloads) set ``scales_with_n = False`` and ignore
``n``.  :func:`coverage_summary` reports how many distribution families, cost
models and correlation regimes the registered specs span — the breadth the
scenario matrix inherits for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.experiments.workloads import Workload

__all__ = [
    "WorkloadSpec",
    "register_workload",
    "get_workload_spec",
    "available_workloads",
    "build_workload",
    "coverage_summary",
]

# Builder: (n, seed, **params) -> Workload.
WorkloadBuilder = Callable[..., Workload]

#: The metadata axes a spec must pick a value on.  Values are open-ended
#: strings (new families register freely); these names are what
#: :func:`coverage_summary` groups by.
COVERAGE_AXES = ("family", "cost_model", "correlation", "claim_shape")


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered scenario: metadata axes plus a parameterized builder.

    ``family`` names the error-model family (``discrete_uniform`` /
    ``discrete_lognormal`` / ``discrete_multimodal`` / ``normal`` /
    ``mixed``); ``cost_model`` the cleaning-cost generator; ``correlation``
    the error-correlation regime (``independent`` / ``chain`` / ``block`` /
    ``banded``); ``claim_shape`` the claim structure (``window_comparison`` /
    ``linear_aggregate`` / ``window_threshold``).  ``defaults`` are keyword
    parameters merged under any caller overrides; ``scales_with_n`` is False
    for specs pinned to a fixed real dataset.
    """

    name: str
    description: str
    builder: WorkloadBuilder
    family: str
    cost_model: str
    correlation: str
    claim_shape: str
    defaults: Mapping[str, Any] = field(default_factory=dict)
    scales_with_n: bool = True
    paper_figure: str = ""

    def build(self, n: Optional[int] = None, seed: int = 0, **overrides: Any) -> Workload:
        """Instantiate the workload at size ``n`` with the given ``seed``.

        ``overrides`` take precedence over the spec's ``defaults``.  Specs
        with ``scales_with_n = False`` ignore ``n`` (their dataset has a
        fixed size).  The returned workload carries the spec's ``name``.
        """
        params: Dict[str, Any] = dict(self.defaults)
        params.update(overrides)
        if self.scales_with_n:
            workload = self.builder(n=n, seed=seed, **params)
        else:
            workload = self.builder(seed=seed, **params)
        workload.name = self.name
        if not workload.description:
            workload.description = self.description
        return workload


_WORKLOAD_REGISTRY: Dict[str, WorkloadSpec] = {}


def register_workload(
    name: str,
    description: str,
    family: str,
    cost_model: str,
    correlation: str,
    claim_shape: str,
    defaults: Optional[Mapping[str, Any]] = None,
    scales_with_n: bool = True,
    paper_figure: str = "",
):
    """Decorator registering a builder function as a :class:`WorkloadSpec`.

    Re-registering a name overwrites the previous spec (supports reloading in
    notebooks), mirroring the solver registry's convention.
    """

    def _register(builder: WorkloadBuilder) -> WorkloadBuilder:
        _WORKLOAD_REGISTRY[name] = WorkloadSpec(
            name=name,
            description=description,
            builder=builder,
            family=family,
            cost_model=cost_model,
            correlation=correlation,
            claim_shape=claim_shape,
            defaults=dict(defaults or {}),
            scales_with_n=scales_with_n,
            paper_figure=paper_figure,
        )
        return builder

    return _register


def get_workload_spec(name: str) -> WorkloadSpec:
    """Look up a registered workload spec by name."""
    try:
        return _WORKLOAD_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_WORKLOAD_REGISTRY))
        raise KeyError(
            f"no workload registered under {name!r}; known workloads: {known}"
        ) from None


def available_workloads() -> Dict[str, WorkloadSpec]:
    """All registered workload specs, in registration order."""
    return dict(_WORKLOAD_REGISTRY)


def build_workload(name: str, n: Optional[int] = None, seed: int = 0, **overrides: Any) -> Workload:
    """Build the named workload: shorthand for ``get_workload_spec(name).build(...)``."""
    return get_workload_spec(name).build(n=n, seed=seed, **overrides)


def coverage_summary(
    specs: Optional[Sequence[WorkloadSpec]] = None,
) -> Dict[str, List[str]]:
    """Distinct values per metadata axis across the given (default: all) specs.

    The scenario matrix prints this so a report states its breadth explicitly
    — e.g. ``{"family": ["discrete_uniform", "normal", ...], ...}`` — instead
    of leaving the reader to infer it from workload names.
    """
    chosen = list(specs) if specs is not None else list(_WORKLOAD_REGISTRY.values())
    summary: Dict[str, List[str]] = {}
    for axis in COVERAGE_AXES:
        seen: Set[str] = set()
        ordered: List[str] = []
        for spec in chosen:
            value = getattr(spec, axis)
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        summary[axis] = ordered
    return summary
