"""Streaming re-planning engine: event journals and warm-started re-solves.

Real fact-checking data arrives continuously — values get revealed
out-of-band, cleaning costs drift, objects appear and disappear — while
the paper's algorithms plan once against a frozen
:class:`~repro.uncertainty.database.UncertainDatabase`.  This package
closes the gap without giving up exactness:

* :mod:`repro.streaming.events` — the append-only event model: four
  frozen dataclass events (``reveal``, ``cost_change``, ``insert``,
  ``remove``), a :class:`~repro.streaming.events.Journal` with JSONL
  persistence, and a deterministic journal synthesizer.
* :mod:`repro.streaming.planner` — the
  :class:`~repro.streaming.planner.StreamingPlanner`: maintains a live
  cleaning plan across events by keeping the still-valid affordable
  prefix of the previous solve, replaying it through the solver's own
  ``resume`` machinery, and reusing the conditioned
  :class:`~repro.core.expected_variance.DecomposedEVCalculator` /
  :class:`~repro.uncertainty.correlation.ConditionalGaussian` state
  instead of rebuilding it, with a cold-solve fallback when a delta
  invalidates everything.
* :mod:`repro.streaming.replay` — the deterministic replay harness
  behind the ``repro stream replay`` CLI subcommand: re-runs a journal,
  timing each incremental re-solve against a from-scratch solve and
  recording plan-divergence metrics.
"""

from repro.streaming.events import (
    CostChangeEvent,
    InsertEvent,
    Journal,
    RemoveEvent,
    RevealEvent,
    StreamEvent,
    event_from_dict,
    event_to_dict,
    synthesize_journal,
)
from repro.streaming.events import JournalCorruptionError
from repro.streaming.planner import StreamingPlanner
from repro.streaming.replay import (
    ReplayResult,
    apply_and_record,
    plan_signature,
    replay_journal,
)

__all__ = [
    "CostChangeEvent",
    "InsertEvent",
    "Journal",
    "JournalCorruptionError",
    "RemoveEvent",
    "RevealEvent",
    "StreamEvent",
    "event_from_dict",
    "event_to_dict",
    "synthesize_journal",
    "StreamingPlanner",
    "ReplayResult",
    "apply_and_record",
    "plan_signature",
    "replay_journal",
]
