"""The warm-starting streaming planner.

:class:`StreamingPlanner` keeps a cleaning plan *live* while
:mod:`~repro.streaming.events` arrive.  Each event is folded into the
state as a cheap delta — a :meth:`~repro.uncertainty.database.
UncertainDatabase.conditioned` / :meth:`~repro.uncertainty.database.
UncertainDatabase.with_cost` / :meth:`~repro.uncertainty.database.
UncertainDatabase.with_appended` overlay of the *root* database plus a
rank-one engine downdate or a piece-local calculator invalidation — and
the plan is then repaired, not recomputed:

1. **Keep the still-valid prefix.**  The previous solve's
   :class:`~repro.core.solver.SelectionStep` log is walked and truncated
   at the first step the delta could have displaced.  For the modular
   (linear, independent-errors) track the test is a ratio threshold — a
   step survives while its benefit/cost key strictly beats every changed
   key, which is exact because the remaining keys and the prefix's spend
   are untouched.  For the decomposed (claim-quality) track the test is
   a verify-walk — only objects sharing a perturbation term or an
   interacting pair with the changed object can have moved (Theorem
   3.8's locality), so each kept step only has to beat the best
   *affected* challenger at the same loop state.  Both rules truncate
   conservatively on ties: a shorter prefix never changes the answer,
   it only does a little more resume work.
2. **Resume through the solver's own machinery.**  The kept prefix is
   handed to the solver's ``_run(initial_selection=...)`` hook — the
   same code path :class:`~repro.core.solver.SelectionTrace` read-backs
   use — which rebuilds the loop state conditioned on the prefix and
   continues exactly as a from-scratch run would, single-item safeguard
   included.  Warm and cold solves therefore return identical
   selections (the equivalence the streaming tests pin down).
3. **Reuse the conditioning state.**  The decomposed track keeps one
   :class:`~repro.core.expected_variance.DecomposedEVCalculator` alive
   across events via :meth:`~repro.core.expected_variance.
   DecomposedEVCalculator.rebased` (memoized pieces survive every event
   that does not touch their objects); the dependency track keeps one
   :class:`~repro.uncertainty.correlation.ConditionalGaussian` updated
   by rank-one downdates and hands it to
   :class:`~repro.core.greedy.GreedyDep` as its ``warm_engine``.

The **cold-solve fallback** is automatic: an event that invalidates
everything (an ``insert`` on the dependency track — appending a row and
column to a conditioned covariance is a rebuild, not a downdate) resets
the engine from scratch and the planner reports ``mode="cold"`` for
that step.  Correlations can re-rank *any* candidate after a reveal, so
the dependency track never keeps a prefix — its warmness is the reused
engine, which is where the paper's cost lives (the O(n^2)-per-step
covariance work), not the Python loop.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.claims.functions import ClaimFunction, LinearClaim
from repro.core.expected_variance import (
    DecomposedEVCalculator,
    linear_expected_variance,
)
from repro.core.greedy import GreedyDep, GreedyMinVar
from repro.core.solver import SelectionStep
from repro.streaming.events import (
    CostChangeEvent,
    InsertEvent,
    RemoveEvent,
    RevealEvent,
    StreamEvent,
)
from repro.uncertainty.correlation import GaussianWorldModel, conditional_covariance
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = ["StreamingPlanner"]

_EPS = 1e-9
_EMPTY = frozenset()


class StreamingPlanner:
    """Maintains a live cleaning plan across an event stream.

    Parameters
    ----------
    database:
        The initial uncertain database.  Every event is applied as an
        overlay against this root, so a long stream never copies it.
    function:
        The claim function the budget is planned for.  A linear claim
        selects the modular track (or, with ``model``, the dependency
        track); a claim-quality measure selects the decomposed track.
    budget:
        The absolute cleaning budget every re-solve plans against.
    track:
        ``"modular"``, ``"decomposed"``, ``"dependency"`` or ``"auto"``
        (dependency when ``model`` is given, modular for linear claims,
        decomposed otherwise).
    model:
        The :class:`~repro.uncertainty.correlation.GaussianWorldModel`
        for the dependency track (dense covariance; inserts extend it
        block-diagonally, so structured models are not supported here).
    conditional:
        The dependency track's variance mode (Schur conditional vs
        marginal), forwarded to :class:`~repro.core.greedy.GreedyDep`.
    discretize_points:
        Support size inserted objects are discretized to on the
        decomposed track (matching ``UncertainObject.discretized``).
    """

    def __init__(
        self,
        database: UncertainDatabase,
        function: ClaimFunction,
        budget: float,
        track: str = "auto",
        model: Optional[GaussianWorldModel] = None,
        conditional: bool = True,
        discretize_points: int = 6,
    ):
        if track == "auto":
            if model is not None:
                track = "dependency"
            elif function.is_linear():
                track = "modular"
            else:
                track = "decomposed"
        if track not in ("modular", "decomposed", "dependency"):
            raise ValueError(f"unknown track {track!r}")
        if track == "dependency" and model is None:
            raise ValueError("the dependency track needs a GaussianWorldModel")
        if track == "modular" and not function.is_linear():
            raise TypeError("the modular track needs a linear claim function")
        self.track = track
        self.database = database
        self.function = function
        self.budget = float(budget)
        self.conditional = bool(conditional)
        self.discretize_points = int(discretize_points)

        self.events_applied = 0
        self.warm_solves = 0
        self.cold_solves = 0
        self.last_mode = "init"
        self.last_prefix_kept = 0

        self._calculator: Optional[DecomposedEVCalculator] = None
        self._engine = None
        self._model: Optional[GaussianWorldModel] = None
        self._base_cov: Optional[np.ndarray] = None
        self._revealed: Dict[int, float] = {}
        if track == "decomposed":
            self._calculator = DecomposedEVCalculator(database, function)
        elif track == "dependency":
            self._model = model
            self._base_cov = np.array(model.covariance, dtype=float)
            weights = function.weights(len(database))
            self._engine = model.engine(weights, conditional=self.conditional)

        self._steps: List[SelectionStep] = []
        self.plan: List[int] = []
        self._solve(prefix_steps=[])
        self.last_mode = "init"

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: StreamEvent) -> Dict[str, object]:
        """Fold one event into the state and repair the plan.

        Returns a summary dict: the event ``kind``, the re-solve ``mode``
        (``"warm"`` when a non-empty prefix survived, ``"replan"`` when
        the prefix emptied but the conditioning state was reused,
        ``"cold"`` when the state had to be rebuilt), how many prefix
        steps were kept, and the new plan.
        """
        cold = False
        if isinstance(event, RevealEvent):
            prefix = self._apply_reveal(int(event.index), float(event.value))
        elif isinstance(event, CostChangeEvent):
            prefix = self._apply_cost_change(int(event.index), float(event.cost))
        elif isinstance(event, InsertEvent):
            prefix, cold = self._apply_insert(event)
        elif isinstance(event, RemoveEvent):
            prefix = self._apply_remove(int(event.index))
        else:
            raise TypeError(f"not a stream event: {event!r}")

        self._solve(prefix_steps=prefix)
        self.events_applied += 1
        if cold:
            self.cold_solves += 1
            self.last_mode = "cold"
        elif prefix:
            self.warm_solves += 1
            self.last_mode = "warm"
        else:
            self.warm_solves += 1
            self.last_mode = "replan"
        self.last_prefix_kept = len(prefix)
        return {
            "kind": event.kind,
            "mode": self.last_mode,
            "prefix_kept": self.last_prefix_kept,
            "plan": list(self.plan),
        }

    def _apply_reveal(self, index: int, value: float) -> List[SelectionStep]:
        self.database = self.database.conditioned(index, value)
        if self.track == "decomposed":
            self._calculator = self._calculator.rebased(self.database, (index,))
            return self._decomposed_prefix({index})
        if self.track == "dependency":
            self._revealed[index] = value
            if not self._engine.is_cleaned(index):
                self._engine.condition_on(index)
            return []
        return self._modular_prefix({index}, threshold=0.0)

    def _apply_cost_change(self, index: int, cost: float) -> List[SelectionStep]:
        self.database = self.database.with_cost(index, cost)
        if self.track == "decomposed":
            # Expected variance never reads costs: no pieces invalidated,
            # only the changed object's benefit/cost ratio moved.
            self._calculator = self._calculator.rebased(self.database, ())
            return self._decomposed_prefix({index})
        if self.track == "dependency":
            return []
        weights = self.function.weights(len(self.database))
        new_key = 0.0
        if math.isfinite(cost):
            new_key = float(
                weights[index] ** 2 * self.database.variances[index] / cost
            )
        return self._modular_prefix({index}, threshold=new_key)

    def _apply_insert(self, event: InsertEvent) -> Tuple[List[SelectionStep], bool]:
        old_n = len(self.database)
        obj = UncertainObject(
            name=event.name,
            current_value=float(event.current_value),
            distribution=NormalSpec(float(event.mean), float(event.std)),
            cost=float(event.cost),
        )
        if self.track == "decomposed" and self.database.all_discrete():
            obj = obj.discretized(points=self.discretize_points)
        self.database = self.database.with_appended([obj])

        if self.track == "decomposed":
            self._calculator = self._calculator.rebased(self.database, ())
            return self._decomposed_prefix({old_n}), False

        if float(event.weight) != 0.0 or self.track == "dependency":
            old_weights = self.function.weights(old_n)
            self.function = LinearClaim.from_vector(
                np.append(old_weights, float(event.weight))
            )

        if self.track == "dependency":
            # A new row/column cannot be folded into a conditioned
            # covariance by a downdate: rebuild the engine from the
            # extended base covariance and replay the reveals — the
            # documented cold-solve fallback.
            extended = np.zeros((old_n + 1, old_n + 1), dtype=float)
            extended[:old_n, :old_n] = self._base_cov
            extended[old_n, old_n] = float(event.std) ** 2
            self._base_cov = extended
            self._model = GaussianWorldModel(
                self.database.current_values, extended, validate=False
            )
            weights = self.function.weights(old_n + 1)
            self._engine = self._model.engine(weights, conditional=self.conditional)
            for index in self._revealed:
                self._engine.condition_on(index)
            return [], True

        weights = self.function.weights(old_n + 1)
        new_key = float(
            weights[old_n] ** 2 * self.database.variances[old_n] / event.cost
        )
        return self._modular_prefix(set(), threshold=new_key), False

    def _apply_remove(self, index: int) -> List[SelectionStep]:
        # Tombstone: reveal at the current value (variance contribution
        # drops to zero) and price the object out forever.  Positions of
        # every other object — and therefore every claim index — survive.
        value = float(self.database.current_values[index])
        self.database = self.database.conditioned(index, value).with_cost(
            index, math.inf
        )
        if self.track == "decomposed":
            self._calculator = self._calculator.rebased(self.database, (index,))
            return self._decomposed_prefix({index})
        if self.track == "dependency":
            self._revealed[index] = value
            if not self._engine.is_cleaned(index):
                self._engine.condition_on(index)
            return []
        return self._modular_prefix({index}, threshold=0.0)

    # ------------------------------------------------------------------ #
    # Prefix-validity rules
    # ------------------------------------------------------------------ #
    def _modular_prefix(
        self, changed: Set[int], threshold: float
    ) -> List[SelectionStep]:
        """Steps of the last solve a modular delta provably cannot displace.

        The modular greedy is a single descending benefit/cost walk, so a
        recorded step stays the cold solve's next pick as long as (a) it is
        not itself a changed object and (b) its key strictly beats every
        changed object's *new* key — nothing can have been re-ranked above
        it, and the prefix's spend is unchanged because kept costs are
        unchanged.  Ties truncate (the cold walk breaks them by cost and
        index, which is not worth re-deriving here).
        """
        kept: List[SelectionStep] = []
        guard = threshold * (1.0 + 1e-12) + 1e-15
        for step in self._steps:
            if step.index in changed:
                break
            if step.cost <= 0 or step.gain / step.cost <= guard:
                break
            kept.append(step)
        return kept

    def _decomposed_prefix(self, changed: Set[int]) -> List[SelectionStep]:
        """Steps of the last solve a decomposed delta provably cannot displace.

        By Theorem 3.8's locality only the ``changed`` objects and their
        term/pair neighbours can have moved, so the old step log is
        *verified* in loop order: at each step the best affected-and-
        affordable challenger is re-scored against the step's recorded
        ratio (unaffected gains are bit-identical, the calculator memo
        makes the challenger scores cache reads), and the walk truncates
        at the first step that is itself affected or no longer provably
        beats the challengers.
        """
        calculator = self._calculator
        affected: Set[int] = set(changed)
        for index in changed:
            for k in calculator._terms_by_object.get(index, ()):
                affected |= calculator.terms[k].referenced_indices
            for pair in calculator._pairs_by_object.get(index, ()):
                affected |= calculator._pair_union_refs[pair]
        costs = self.database.costs
        kept: List[SelectionStep] = []
        selected: frozenset = _EMPTY
        spent = 0.0
        for step in self._steps:
            if step.index in affected:
                break
            ratio = step.gain / step.cost if step.cost > 0 else math.inf
            displaced = False
            for candidate in affected:
                if candidate in selected or candidate >= len(costs):
                    continue
                candidate_cost = float(costs[candidate])
                if spent + candidate_cost > self.budget + _EPS:
                    continue
                challenger = (
                    calculator.marginal_gain(selected, candidate) / candidate_cost
                )
                if challenger >= ratio * (1.0 - 1e-12) - 1e-18:
                    displaced = True
                    break
            if displaced:
                break
            kept.append(step)
            selected = selected | {step.index}
            spent += step.cost
        return kept

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def _solver(self):
        if self.track == "decomposed":
            return GreedyMinVar(self.function, calculator=self._calculator)
        if self.track == "dependency":
            return GreedyDep(
                self.function,
                self._model,
                conditional=self.conditional,
                warm_engine=self._engine,
            )
        return GreedyMinVar(self.function)

    def _solve(self, prefix_steps: Sequence[SelectionStep]) -> None:
        prefix = [step.index for step in prefix_steps]
        new_steps: List[SelectionStep] = []
        solver = self._solver()
        result = solver._run(
            self.database,
            self.budget,
            initial_selection=prefix,
            record_steps=new_steps,
        )
        self.plan = [int(i) for i in result]
        if prefix and self.plan[: len(prefix)] != prefix:
            # The single-item safeguard replaced the greedy selection; the
            # step log no longer describes the plan, so the next event
            # starts from an empty prefix (correct, just less warm).
            self._steps = []
        else:
            self._steps = list(prefix_steps) + new_steps

    # ------------------------------------------------------------------ #
    # Cold references (for the replay harness and the equivalence tests)
    # ------------------------------------------------------------------ #
    def cold_plan(self) -> List[int]:
        """The plan a from-scratch solve on the current state produces.

        Builds everything fresh — a new calculator on the decomposed
        track, a new model from the reveal-conditioned covariance on the
        dependency track — so timing this against :meth:`apply` measures
        exactly what warm-starting saves.
        """
        if self.track == "dependency":
            solver = GreedyDep(
                self.function, self._cold_model(), conditional=self.conditional
            )
            return solver.select_indices(self.database, self.budget)
        solver = GreedyMinVar(self.function)
        return solver.select_indices(self.database, self.budget)

    def _cold_model(self) -> GaussianWorldModel:
        """The post-reveal world model, derived from the base covariance."""
        n = len(self.database)
        revealed = sorted(self._revealed)
        if not revealed:
            covariance = self._base_cov
        elif self.conditional:
            covariance = np.zeros((n, n), dtype=float)
            remaining = [i for i in range(n) if i not in self._revealed]
            if remaining:
                reduced = conditional_covariance(self._base_cov, revealed)
                covariance[np.ix_(remaining, remaining)] = reduced
        else:
            covariance = self._base_cov.copy()
            covariance[revealed, :] = 0.0
            covariance[:, revealed] = 0.0
        return GaussianWorldModel(
            self.database.current_values, covariance, validate=False
        )

    def objective(self, plan: Optional[Sequence[int]] = None) -> float:
        """The post-cleaning objective value of ``plan`` (default: the live plan)."""
        indices = list(self.plan if plan is None else plan)
        if self.track == "decomposed":
            return float(self._calculator.expected_variance(indices))
        if self.track == "dependency":
            engine = self._engine.copy()
            for index in indices:
                if not engine.is_cleaned(index):
                    engine.condition_on(index)
            return float(engine.variance())
        weights = self.function.weights(len(self.database))
        return float(linear_expected_variance(self.database, weights, indices))

    @property
    def steps(self) -> List[SelectionStep]:
        """The step log describing the live plan (empty after a safeguard hit)."""
        return list(self._steps)
