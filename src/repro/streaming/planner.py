"""The warm-starting streaming planner.

:class:`StreamingPlanner` keeps a cleaning plan *live* while
:mod:`~repro.streaming.events` arrive.  Each event is folded into the
state as a cheap delta — a :meth:`~repro.uncertainty.database.
UncertainDatabase.conditioned` / :meth:`~repro.uncertainty.database.
UncertainDatabase.with_cost` / :meth:`~repro.uncertainty.database.
UncertainDatabase.with_appended` overlay of the *root* database plus a
rank-one engine downdate or a piece-local calculator invalidation — and
the plan is then repaired, not recomputed:

1. **Keep the still-valid prefix.**  The previous solve's
   :class:`~repro.core.solver.SelectionStep` log is walked and truncated
   at the first step the delta could have displaced.  For the modular
   (linear, independent-errors) track the test is a ratio threshold — a
   step survives while its benefit/cost key strictly beats every changed
   key, which is exact because the remaining keys and the prefix's spend
   are untouched.  For the decomposed (claim-quality) track the test is
   a verify-walk — only objects sharing a perturbation term or an
   interacting pair with the changed object can have moved (Theorem
   3.8's locality), so each kept step only has to beat the best
   *affected* challenger at the same loop state.  Both rules truncate
   conservatively on ties: a shorter prefix never changes the answer,
   it only does a little more resume work.
2. **Resume through the solver's own machinery.**  The kept prefix is
   handed to the solver's ``_run(initial_selection=...)`` hook — the
   same code path :class:`~repro.core.solver.SelectionTrace` read-backs
   use — which rebuilds the loop state conditioned on the prefix and
   continues exactly as a from-scratch run would, single-item safeguard
   included.  Warm and cold solves therefore return identical
   selections (the equivalence the streaming tests pin down).
3. **Reuse the conditioning state.**  The decomposed track keeps one
   :class:`~repro.core.expected_variance.DecomposedEVCalculator` alive
   across events via :meth:`~repro.core.expected_variance.
   DecomposedEVCalculator.rebased` (memoized pieces survive every event
   that does not touch their objects); the dependency track keeps one
   :class:`~repro.uncertainty.correlation.ConditionalGaussian` updated
   by rank-one downdates and hands it to
   :class:`~repro.core.greedy.GreedyDep` as its ``warm_engine``.

The **cold-solve fallback** is automatic: an event that invalidates
everything (an ``insert`` on the dependency track — appending a row and
column to a conditioned covariance is a rebuild, not a downdate) resets
the engine from scratch and the planner reports ``mode="cold"`` for
that step.  Correlations can re-rank *any* candidate after a reveal, so
the dependency track never keeps a prefix — its warmness is the reused
engine, which is where the paper's cost lives (the O(n^2)-per-step
covariance work), not the Python loop.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.claims.functions import ClaimFunction, LinearClaim
from repro.core.expected_variance import (
    DecomposedEVCalculator,
    linear_expected_variance,
)
from repro.core.greedy import GreedyDep, GreedyMinVar
from repro.core.solver import SelectionStep
from repro.resilience.degradation import record_degradation
from repro.resilience.faults import maybe_corrupt_event
from repro.streaming.events import (
    CostChangeEvent,
    InsertEvent,
    RemoveEvent,
    RevealEvent,
    StreamEvent,
    event_from_dict,
    event_to_dict,
)
from repro.uncertainty.correlation import GaussianWorldModel, conditional_covariance
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import NormalSpec
from repro.uncertainty.objects import UncertainObject

__all__ = ["StreamingPlanner"]

#: Version tag of the checkpoint state format (see ``state_dict``).
STATE_VERSION = 1

_EPS = 1e-9
_EMPTY = frozenset()


class StreamingPlanner:
    """Maintains a live cleaning plan across an event stream.

    Parameters
    ----------
    database:
        The initial uncertain database.  Every event is applied as an
        overlay against this root, so a long stream never copies it.
    function:
        The claim function the budget is planned for.  A linear claim
        selects the modular track (or, with ``model``, the dependency
        track); a claim-quality measure selects the decomposed track.
    budget:
        The absolute cleaning budget every re-solve plans against.
    track:
        ``"modular"``, ``"decomposed"``, ``"dependency"`` or ``"auto"``
        (dependency when ``model`` is given, modular for linear claims,
        decomposed otherwise).
    model:
        The :class:`~repro.uncertainty.correlation.GaussianWorldModel`
        for the dependency track (dense covariance; inserts extend it
        block-diagonally, so structured models are not supported here).
    conditional:
        The dependency track's variance mode (Schur conditional vs
        marginal), forwarded to :class:`~repro.core.greedy.GreedyDep`.
    discretize_points:
        Support size inserted objects are discretized to on the
        decomposed track (matching ``UncertainObject.discretized``).
    store:
        An optional :class:`~repro.store.sqlite_store.PlanStore`.  When
        given, every :meth:`apply` becomes crash-safe: the event is made
        durable *before* it is applied and the resulting plan (plus a
        periodic checkpoint) is committed atomically afterwards, so
        :meth:`resume` can rebuild the planner after a SIGKILL at any
        point and reproduce the uninterrupted plan sequence exactly.
    stream_id:
        The store stream this planner journals under.
    checkpoint_every:
        Take a durable state checkpoint every ``k`` events (0 disables
        periodic checkpoints; the binding checkpoint is always written).
    """

    def __init__(
        self,
        database: UncertainDatabase,
        function: ClaimFunction,
        budget: float,
        track: str = "auto",
        model: Optional[GaussianWorldModel] = None,
        conditional: bool = True,
        discretize_points: int = 6,
        store: Optional[Any] = None,
        stream_id: str = "stream",
        checkpoint_every: int = 10,
    ):
        if track == "auto":
            if model is not None:
                track = "dependency"
            elif function.is_linear():
                track = "modular"
            else:
                track = "decomposed"
        if track not in ("modular", "decomposed", "dependency"):
            raise ValueError(f"unknown track {track!r}")
        if track == "dependency" and model is None:
            raise ValueError("the dependency track needs a GaussianWorldModel")
        if track == "modular" and not function.is_linear():
            raise TypeError("the modular track needs a linear claim function")
        self.track = track
        self.database = database
        self.function = function
        self.budget = float(budget)
        self.conditional = bool(conditional)
        self.discretize_points = int(discretize_points)

        self.events_applied = 0
        self.warm_solves = 0
        self.cold_solves = 0
        self.last_mode = "init"
        self.last_prefix_kept = 0

        self._calculator: Optional[DecomposedEVCalculator] = None
        self._engine = None
        self._model: Optional[GaussianWorldModel] = None
        self._base_cov: Optional[np.ndarray] = None
        self._revealed: Dict[int, float] = {}
        self._inserts: List[Dict[str, object]] = []
        self._function_extended = False
        self._store: Optional[Any] = None
        self._stream_id = str(stream_id)
        self.checkpoint_every = int(checkpoint_every)
        self._owner: Optional[str] = None
        if track == "decomposed":
            self._calculator = DecomposedEVCalculator(database, function)
        elif track == "dependency":
            self._model = model
            self._base_cov = np.array(model.covariance, dtype=float)
            weights = function.weights(len(database))
            self._engine = model.engine(weights, conditional=self.conditional)

        self._steps: List[SelectionStep] = []
        self.plan: List[int] = []
        self._solve(prefix_steps=[])
        self.last_mode = "init"
        if store is not None:
            self.bind_store(store, stream_id=stream_id, checkpoint_every=checkpoint_every)

    # ------------------------------------------------------------------ #
    # Versioning and ownership
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """The monotonic plan version: the number of events folded in.

        Version 0 is the initial cold solve; every successful
        :meth:`apply` (or :meth:`_durable_apply`) increments it by exactly
        one, so a plan stamped with version *v* is the deterministic result
        of the first *v* journal events.  The service layer exposes this
        stamp on every response and the concurrent-history harness asserts
        it only ever moves forward per session.
        """
        return int(self.events_applied)

    def claim_owner(self, owner: str) -> None:
        """Claim exclusive write ownership of this planner for ``owner``.

        A planner folds events strictly serially — two writers interleaving
        :meth:`apply` calls would corrupt the warm-start state — so the
        service's session manager claims each planner once and routes every
        ingest through the owning session's write lock.  A second claim (by
        any name, including the same one) raises ``RuntimeError`` until
        :meth:`release_owner` runs; this turns an accidental double-bind
        into a loud error instead of silent plan corruption.
        """
        name = str(owner)
        if not name:
            raise ValueError("owner name must be non-empty")
        if self._owner is not None:
            raise RuntimeError(
                f"planner already owned by {self._owner!r}; "
                f"release_owner() before claiming for {name!r}"
            )
        self._owner = name

    def release_owner(self) -> None:
        """Release the write-ownership claim (no-op when unclaimed)."""
        self._owner = None

    @property
    def owner(self) -> Optional[str]:
        """The current exclusive owner's name, or ``None`` when unclaimed."""
        return self._owner

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: StreamEvent) -> Dict[str, object]:
        """Fold one event into the state and repair the plan.

        Returns a summary dict: the event ``kind``, the re-solve ``mode``
        (``"warm"`` when a non-empty prefix survived, ``"replan"`` when
        the prefix emptied but the conditioning state was reused,
        ``"cold"`` when the state had to be rebuilt), how many prefix
        steps were kept, and the new plan.

        The event is validated up front — non-finite values, NaN costs
        and the like raise :class:`ValueError` before any state mutates.
        With a bound store the application is durable (see
        :meth:`bind_store`); either way a failure of the warm path falls
        back down the warm→cold degradation chain instead of leaving the
        planner in a half-applied state.
        """
        self._validate_event(event)
        if self._store is not None:
            return self._durable_apply(event)
        try:
            return self._apply_once(event)
        except Exception:
            record_degradation("planner", "warm_to_cold")
            return self._apply_cold(event)

    def _apply_once(self, event: StreamEvent) -> Dict[str, object]:
        """The warm path: fold the event as a delta and repair the plan."""
        cold = False
        if isinstance(event, RevealEvent):
            prefix = self._apply_reveal(int(event.index), float(event.value))
        elif isinstance(event, CostChangeEvent):
            prefix = self._apply_cost_change(int(event.index), float(event.cost))
        elif isinstance(event, InsertEvent):
            prefix, cold = self._apply_insert(event)
        elif isinstance(event, RemoveEvent):
            prefix = self._apply_remove(int(event.index))
        else:
            raise TypeError(f"not a stream event: {event!r}")

        self._solve(prefix_steps=prefix)
        self.events_applied += 1
        if cold:
            self.cold_solves += 1
            self.last_mode = "cold"
        elif prefix:
            self.warm_solves += 1
            self.last_mode = "warm"
        else:
            self.warm_solves += 1
            self.last_mode = "replan"
        self.last_prefix_kept = len(prefix)
        return {
            "kind": event.kind,
            "mode": self.last_mode,
            "prefix_kept": self.last_prefix_kept,
            "plan": list(self.plan),
        }

    def _apply_reveal(self, index: int, value: float) -> List[SelectionStep]:
        self.database = self.database.conditioned(index, value)
        if self.track == "decomposed":
            self._calculator = self._calculator.rebased(self.database, (index,))
            return self._decomposed_prefix({index})
        if self.track == "dependency":
            self._revealed[index] = value
            if not self._engine.is_cleaned(index):
                self._engine.condition_on(index)
            return []
        return self._modular_prefix({index}, threshold=0.0)

    def _apply_cost_change(self, index: int, cost: float) -> List[SelectionStep]:
        self.database = self.database.with_cost(index, cost)
        if self.track == "decomposed":
            # Expected variance never reads costs: no pieces invalidated,
            # only the changed object's benefit/cost ratio moved.
            self._calculator = self._calculator.rebased(self.database, ())
            return self._decomposed_prefix({index})
        if self.track == "dependency":
            return []
        weights = self.function.weights(len(self.database))
        new_key = 0.0
        if math.isfinite(cost):
            new_key = float(
                weights[index] ** 2 * self.database.variances[index] / cost
            )
        return self._modular_prefix({index}, threshold=new_key)

    def _insert_delta(self, event: InsertEvent) -> int:
        """Apply an insert's database / function / covariance delta.

        Returns the pre-insert size.  Shared by the warm path, the cold
        recovery path and (through the recorded construction parameters)
        :meth:`restore`, so all three build bit-identical state.
        """
        old_n = len(self.database)
        obj = UncertainObject(
            name=event.name,
            current_value=float(event.current_value),
            distribution=NormalSpec(float(event.mean), float(event.std)),
            cost=float(event.cost),
        )
        if self.track == "decomposed" and self.database.all_discrete():
            obj = obj.discretized(points=self.discretize_points)
        self.database = self.database.with_appended([obj])
        self._inserts.append(event_to_dict(event))

        if self.track != "decomposed" and (
            float(event.weight) != 0.0 or self.track == "dependency"
        ):
            old_weights = self.function.weights(old_n)
            self.function = LinearClaim.from_vector(
                np.append(old_weights, float(event.weight))
            )
            self._function_extended = True

        if self.track == "dependency":
            extended = np.zeros((old_n + 1, old_n + 1), dtype=float)
            extended[:old_n, :old_n] = self._base_cov
            extended[old_n, old_n] = float(event.std) ** 2
            self._base_cov = extended
        return old_n

    def _rebuild_engine(self) -> None:
        """Fresh dependency engine from the base covariance + reveal replay."""
        self._model = GaussianWorldModel(
            self.database.current_values, self._base_cov, validate=False
        )
        weights = self.function.weights(len(self.database))
        self._engine = self._model.engine(weights, conditional=self.conditional)
        for index in self._revealed:
            if not self._engine.is_cleaned(index):
                self._engine.condition_on(index)

    def _apply_insert(self, event: InsertEvent) -> Tuple[List[SelectionStep], bool]:
        old_n = self._insert_delta(event)

        if self.track == "decomposed":
            self._calculator = self._calculator.rebased(self.database, ())
            return self._decomposed_prefix({old_n}), False

        if self.track == "dependency":
            # A new row/column cannot be folded into a conditioned
            # covariance by a downdate: rebuild the engine from the
            # extended base covariance and replay the reveals — the
            # documented cold-solve fallback.
            self._rebuild_engine()
            return [], True

        weights = self.function.weights(old_n + 1)
        new_key = float(
            weights[old_n] ** 2 * self.database.variances[old_n] / event.cost
        )
        return self._modular_prefix(set(), threshold=new_key), False

    def _apply_remove(self, index: int) -> List[SelectionStep]:
        # Tombstone: reveal at the current value (variance contribution
        # drops to zero) and price the object out forever.  Positions of
        # every other object — and therefore every claim index — survive.
        value = float(self.database.current_values[index])
        self.database = self.database.conditioned(index, value).with_cost(
            index, math.inf
        )
        if self.track == "decomposed":
            self._calculator = self._calculator.rebased(self.database, (index,))
            return self._decomposed_prefix({index})
        if self.track == "dependency":
            self._revealed[index] = value
            if not self._engine.is_cleaned(index):
                self._engine.condition_on(index)
            return []
        return self._modular_prefix({index}, threshold=0.0)

    # ------------------------------------------------------------------ #
    # Prefix-validity rules
    # ------------------------------------------------------------------ #
    def _modular_prefix(
        self, changed: Set[int], threshold: float
    ) -> List[SelectionStep]:
        """Steps of the last solve a modular delta provably cannot displace.

        The modular greedy is a single descending benefit/cost walk, so a
        recorded step stays the cold solve's next pick as long as (a) it is
        not itself a changed object and (b) its key strictly beats every
        changed object's *new* key — nothing can have been re-ranked above
        it, and the prefix's spend is unchanged because kept costs are
        unchanged.  Ties truncate (the cold walk breaks them by cost and
        index, which is not worth re-deriving here).
        """
        kept: List[SelectionStep] = []
        guard = threshold * (1.0 + 1e-12) + 1e-15
        for step in self._steps:
            if step.index in changed:
                break
            if step.cost <= 0 or step.gain / step.cost <= guard:
                break
            kept.append(step)
        return kept

    def _decomposed_prefix(self, changed: Set[int]) -> List[SelectionStep]:
        """Steps of the last solve a decomposed delta provably cannot displace.

        By Theorem 3.8's locality only the ``changed`` objects and their
        term/pair neighbours can have moved, so the old step log is
        *verified* in loop order: at each step the best affected-and-
        affordable challenger is re-scored against the step's recorded
        ratio (unaffected gains are bit-identical, the calculator memo
        makes the challenger scores cache reads), and the walk truncates
        at the first step that is itself affected or no longer provably
        beats the challengers.
        """
        calculator = self._calculator
        affected: Set[int] = set(changed)
        for index in changed:
            for k in calculator._terms_by_object.get(index, ()):
                affected |= calculator.terms[k].referenced_indices
            for pair in calculator._pairs_by_object.get(index, ()):
                affected |= calculator._pair_union_refs[pair]
        costs = self.database.costs
        kept: List[SelectionStep] = []
        selected: frozenset = _EMPTY
        spent = 0.0
        for step in self._steps:
            if step.index in affected:
                break
            ratio = step.gain / step.cost if step.cost > 0 else math.inf
            displaced = False
            for candidate in affected:
                if candidate in selected or candidate >= len(costs):
                    continue
                candidate_cost = float(costs[candidate])
                if spent + candidate_cost > self.budget + _EPS:
                    continue
                challenger = (
                    calculator.marginal_gain(selected, candidate) / candidate_cost
                )
                if challenger >= ratio * (1.0 - 1e-12) - 1e-18:
                    displaced = True
                    break
            if displaced:
                break
            kept.append(step)
            selected = selected | {step.index}
            spent += step.cost
        return kept

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def _solver(self):
        if self.track == "decomposed":
            return GreedyMinVar(self.function, calculator=self._calculator)
        if self.track == "dependency":
            return GreedyDep(
                self.function,
                self._model,
                conditional=self.conditional,
                warm_engine=self._engine,
            )
        return GreedyMinVar(self.function)

    def _solve(self, prefix_steps: Sequence[SelectionStep]) -> None:
        prefix = [step.index for step in prefix_steps]
        new_steps: List[SelectionStep] = []
        solver = self._solver()
        result = solver._run(
            self.database,
            self.budget,
            initial_selection=prefix,
            record_steps=new_steps,
        )
        self.plan = [int(i) for i in result]
        if prefix and self.plan[: len(prefix)] != prefix:
            # The single-item safeguard replaced the greedy selection; the
            # step log no longer describes the plan, so the next event
            # starts from an empty prefix (correct, just less warm).
            self._steps = []
        else:
            self._steps = list(prefix_steps) + new_steps

    # ------------------------------------------------------------------ #
    # Cold references (for the replay harness and the equivalence tests)
    # ------------------------------------------------------------------ #
    def cold_plan(self) -> List[int]:
        """The plan a from-scratch solve on the current state produces.

        Builds everything fresh — a new calculator on the decomposed
        track, a new model from the reveal-conditioned covariance on the
        dependency track — so timing this against :meth:`apply` measures
        exactly what warm-starting saves.
        """
        if self.track == "dependency":
            solver = GreedyDep(
                self.function, self._cold_model(), conditional=self.conditional
            )
            return solver.select_indices(self.database, self.budget)
        solver = GreedyMinVar(self.function)
        return solver.select_indices(self.database, self.budget)

    def _cold_model(self) -> GaussianWorldModel:
        """The post-reveal world model, derived from the base covariance."""
        n = len(self.database)
        revealed = sorted(self._revealed)
        if not revealed:
            covariance = self._base_cov
        elif self.conditional:
            covariance = np.zeros((n, n), dtype=float)
            remaining = [i for i in range(n) if i not in self._revealed]
            if remaining:
                reduced = conditional_covariance(self._base_cov, revealed)
                covariance[np.ix_(remaining, remaining)] = reduced
        else:
            covariance = self._base_cov.copy()
            covariance[revealed, :] = 0.0
            covariance[:, revealed] = 0.0
        return GaussianWorldModel(
            self.database.current_values, covariance, validate=False
        )

    def objective(self, plan: Optional[Sequence[int]] = None) -> float:
        """The post-cleaning objective value of ``plan`` (default: the live plan)."""
        indices = list(self.plan if plan is None else plan)
        if self.track == "decomposed":
            return float(self._calculator.expected_variance(indices))
        if self.track == "dependency":
            engine = self._engine.copy()
            for index in indices:
                if not engine.is_cleaned(index):
                    engine.condition_on(index)
            return float(engine.variance())
        weights = self.function.weights(len(self.database))
        return float(linear_expected_variance(self.database, weights, indices))

    @property
    def steps(self) -> List[SelectionStep]:
        """The step log describing the live plan (empty after a safeguard hit)."""
        return list(self._steps)

    # ------------------------------------------------------------------ #
    # Validation and the warm→cold degradation chain
    # ------------------------------------------------------------------ #
    def _validate_event(self, event: StreamEvent) -> None:
        """Reject malformed events before any state mutates.

        A NaN smuggled into a reveal value or a cost delta would poison
        every later solve silently; raising here keeps the planner state
        pristine, which is what lets the durable path re-read the
        uncorrupted event from the store and retry.
        """
        if isinstance(event, RevealEvent):
            if not math.isfinite(float(event.value)):
                raise ValueError(
                    f"reveal value for object {event.index} must be finite, "
                    f"got {event.value!r}"
                )
        elif isinstance(event, CostChangeEvent):
            cost = float(event.cost)
            if math.isnan(cost) or cost <= 0:
                raise ValueError(
                    f"cost change for object {event.index} must be positive, "
                    f"got {event.cost!r}"
                )
        elif isinstance(event, InsertEvent):
            for label in ("current_value", "mean", "weight"):
                if not math.isfinite(float(getattr(event, label))):
                    raise ValueError(
                        f"insert {event.name!r}: {label} must be finite, "
                        f"got {getattr(event, label)!r}"
                    )
            std = float(event.std)
            if not math.isfinite(std) or std < 0:
                raise ValueError(
                    f"insert {event.name!r}: std must be finite and "
                    f"nonnegative, got {event.std!r}"
                )
            cost = float(event.cost)
            if not math.isfinite(cost) or cost <= 0:
                raise ValueError(
                    f"insert {event.name!r}: cost must be finite and "
                    f"positive, got {event.cost!r}"
                )
        elif not isinstance(event, RemoveEvent):
            raise TypeError(f"not a stream event: {event!r}")

    def _apply_cold(self, event: StreamEvent) -> Dict[str, object]:
        """The bottom of the warm→cold chain: re-apply the event's logical
        delta idempotently, then rebuild every derived structure from the
        database overlay and solve from scratch.

        Overlay writes are idempotent (re-conditioning on the same value,
        re-pricing to the same cost), so this is safe even when the warm
        path failed halfway through its mutations.
        """
        if isinstance(event, RevealEvent):
            self.database = self.database.conditioned(int(event.index), float(event.value))
            if self.track == "dependency":
                self._revealed[int(event.index)] = float(event.value)
        elif isinstance(event, CostChangeEvent):
            self.database = self.database.with_cost(int(event.index), float(event.cost))
        elif isinstance(event, RemoveEvent):
            index = int(event.index)
            value = float(self.database.current_values[index])
            self.database = self.database.conditioned(index, value).with_cost(
                index, math.inf
            )
            if self.track == "dependency":
                self._revealed.setdefault(index, value)
        elif isinstance(event, InsertEvent):
            if event.name not in self.database:
                self._insert_delta(event)
        else:
            raise TypeError(f"not a stream event: {event!r}")
        self.rebuild_cold()
        self.events_applied += 1
        self.cold_solves += 1
        self.last_mode = "cold"
        self.last_prefix_kept = 0
        return {
            "kind": event.kind,
            "mode": "cold",
            "prefix_kept": 0,
            "plan": list(self.plan),
        }

    def rebuild_cold(self) -> None:
        """Rebuild calculator / engine from the database overlay and re-solve."""
        if self.track == "decomposed":
            self._calculator = DecomposedEVCalculator(self.database, self.function)
        elif self.track == "dependency":
            self._rebuild_engine()
        self._steps = []
        self._solve(prefix_steps=[])

    # ------------------------------------------------------------------ #
    # Durable state: checkpoints, restore and resume
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """The planner's complete logical state as a JSON-ready dict.

        Nothing derived is serialized — no engines, calculators or memo
        tables.  The overlay deltas (reveals, cost overrides, inserted
        objects, all in chronological first-touch order, which the
        overlay dicts preserve) plus the claim weights, the step log and
        the counters are enough for :meth:`restore` to rebuild state that
        continues bit-identically to the uninterrupted planner.
        """
        weights: Optional[List[float]] = None
        if self.track != "decomposed":
            weights = [float(w) for w in self.function.weights(len(self.database))]
        return {
            "version": STATE_VERSION,
            "track": self.track,
            "budget": float(self.budget),
            "conditional": bool(self.conditional),
            "discretize_points": int(self.discretize_points),
            "checkpoint_every": int(self.checkpoint_every),
            "base_n": int(len(self.database)) - int(self.database.appended_count),
            "events_applied": int(self.events_applied),
            "warm_solves": int(self.warm_solves),
            "cold_solves": int(self.cold_solves),
            "last_mode": str(self.last_mode),
            "last_prefix_kept": int(self.last_prefix_kept),
            "reveals": [
                [int(i), float(v)] for i, v in self.database.revealed.items()
            ],
            "cost_overrides": [
                [int(i), float(c)] for i, c in self.database.cost_overrides.items()
            ],
            "inserts": [dict(wire) for wire in self._inserts],
            "function_extended": bool(self._function_extended),
            "weights": weights,
            "steps": [
                [
                    int(step.index),
                    float(step.cost),
                    float(step.gain),
                    None
                    if step.remaining_budget is None
                    else float(step.remaining_budget),
                ]
                for step in self._steps
            ],
            "plan": [int(i) for i in self.plan],
        }

    def state_fingerprint(self) -> str:
        """SHA-256 of the canonical JSON state.

        Equal fingerprints mean identical resumable state: two planners
        with the same fingerprint produce the same plans for the same
        future events.
        """
        text = json.dumps(self.state_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @classmethod
    def restore(
        cls,
        state: Dict[str, object],
        database: UncertainDatabase,
        function: ClaimFunction,
        model: Optional[GaussianWorldModel] = None,
    ) -> "StreamingPlanner":
        """Rebuild a planner from a checkpoint ``state``.

        ``database`` / ``function`` / ``model`` are the *initial* inputs
        the original planner was constructed from (the checkpoint holds
        only deltas against them).  The decomposed track needs the
        original ``function`` — claim-quality measures have no weight
        vector to serialize; the others rebuild an extended
        :class:`~repro.claims.functions.LinearClaim` when inserts grew
        the claim.
        """
        if state.get("version") != STATE_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {state.get('version')!r} "
                f"(expected {STATE_VERSION})"
            )
        track = str(state["track"])
        if len(database) != int(state["base_n"]):
            raise ValueError(
                f"checkpoint was taken against a base database of "
                f"{state['base_n']} objects, got {len(database)}"
            )
        if track == "dependency" and model is None:
            raise ValueError("restoring the dependency track needs its model")

        planner = object.__new__(cls)
        planner.track = track
        planner.budget = float(state["budget"])
        planner.conditional = bool(state["conditional"])
        planner.discretize_points = int(state["discretize_points"])
        planner.checkpoint_every = int(state.get("checkpoint_every", 10))
        planner.events_applied = int(state["events_applied"])
        planner.warm_solves = int(state["warm_solves"])
        planner.cold_solves = int(state["cold_solves"])
        planner.last_mode = str(state["last_mode"])
        planner.last_prefix_kept = int(state["last_prefix_kept"])
        planner._store = None
        planner._stream_id = "stream"
        planner._owner = None
        planner._calculator = None
        planner._engine = None
        planner._model = None
        planner._base_cov = None
        planner._revealed = {}
        planner._inserts = [dict(wire) for wire in state["inserts"]]
        planner._function_extended = bool(state["function_extended"])

        if track != "decomposed" and planner._function_extended:
            planner.function = LinearClaim.from_vector(
                np.asarray(state["weights"], dtype=float)
            )
        else:
            planner.function = function

        # Database: inserts first, then reveals, then cost overrides — the
        # final overlay (appended tuple + delta dicts in chronological
        # order) is identical to the interleaved original.
        db = database
        base_all_discrete = (
            database.all_discrete() if track == "decomposed" else False
        )
        appended: List[UncertainObject] = []
        for wire in planner._inserts:
            event = event_from_dict(wire)
            obj = UncertainObject(
                name=event.name,
                current_value=float(event.current_value),
                distribution=NormalSpec(float(event.mean), float(event.std)),
                cost=float(event.cost),
            )
            if track == "decomposed" and base_all_discrete:
                obj = obj.discretized(points=planner.discretize_points)
            appended.append(obj)
        if appended:
            db = db.with_appended(appended)
        for index, value in state["reveals"]:
            db = db.conditioned(int(index), float(value))
            if track == "dependency":
                planner._revealed[int(index)] = float(value)
        for index, cost in state["cost_overrides"]:
            db = db.with_cost(int(index), float(cost))
        planner.database = db

        if track == "decomposed":
            planner._calculator = DecomposedEVCalculator(db, planner.function)
        elif track == "dependency":
            base_cov = np.array(model.covariance, dtype=float)
            for wire in planner._inserts:
                old_n = base_cov.shape[0]
                extended = np.zeros((old_n + 1, old_n + 1), dtype=float)
                extended[:old_n, :old_n] = base_cov
                extended[old_n, old_n] = float(wire["std"]) ** 2
                base_cov = extended
            planner._base_cov = base_cov
            if planner._inserts:
                planner._rebuild_engine()
            else:
                planner._model = model
                weights = planner.function.weights(len(db))
                planner._engine = model.engine(
                    weights, conditional=planner.conditional
                )
                for index in planner._revealed:
                    if not planner._engine.is_cleaned(index):
                        planner._engine.condition_on(index)

        planner._steps = [
            SelectionStep(
                index=int(index),
                cost=float(cost),
                gain=float(gain),
                remaining_budget=None if remaining is None else float(remaining),
            )
            for index, cost, gain, remaining in state["steps"]
        ]
        planner.plan = [int(i) for i in state["plan"]]
        return planner

    def bind_store(
        self,
        store: Any,
        stream_id: str = "stream",
        checkpoint_every: int = 10,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        """Attach a durable store: every later :meth:`apply` is crash-safe.

        The protocol per event (seq = ``events_applied``):

        1. the event row is committed *before* anything is applied;
        2. the plan row, the cursor and — every ``checkpoint_every``
           events — a state checkpoint are committed in one transaction
           *after* the solve.

        A crash between (1) and (2) leaves a durable event with no plan
        row; :meth:`resume` re-applies it deterministically.  Binding
        also writes an initial checkpoint at the current position so a
        stream is resumable from its very first event.
        """
        self._store = store
        self._stream_id = str(stream_id)
        self.checkpoint_every = int(checkpoint_every)
        store.ensure_stream(self._stream_id, metadata)
        if store.latest_checkpoint(self._stream_id) is None:
            store.save_checkpoint(self._stream_id, self.events_applied, self.state_dict())

    def _durable_apply(self, event: StreamEvent) -> Dict[str, object]:
        """One crash-safe event application (see :meth:`bind_store`)."""
        store, stream = self._store, self._stream_id
        seq = self.events_applied
        store.append_event(stream, seq, event_to_dict(event))
        delivered = maybe_corrupt_event(event)
        try:
            self._validate_event(delivered)
            summary = self._apply_once(delivered)
        except Exception:
            if delivered is not event:
                # Injected in-memory corruption: validation rejected it
                # before any mutation, so re-read the pristine event from
                # the store and retry the warm path once.
                record_degradation("planner", "event_retry")
                pristine = event_from_dict(store.events(stream, seq)[0][1])
                try:
                    summary = self._apply_once(pristine)
                except Exception:
                    record_degradation("planner", "warm_to_cold")
                    summary = self._apply_cold(pristine)
            else:
                record_degradation("planner", "warm_to_cold")
                summary = self._apply_cold(event)
        with store.transaction():
            store.record_plan(stream, seq, dict(summary))
            store.set_cursor(stream, seq)
            if self.checkpoint_every and (seq + 1) % self.checkpoint_every == 0:
                store.save_checkpoint(stream, seq + 1, self.state_dict())
        return summary

    @classmethod
    def resume(
        cls,
        store: Any,
        database: UncertainDatabase,
        function: ClaimFunction,
        stream_id: str = "stream",
        model: Optional[GaussianWorldModel] = None,
        checkpoint_every: Optional[int] = None,
    ) -> "StreamingPlanner":
        """Rebuild a planner from ``store`` after a crash.

        Restores the latest durable checkpoint, then replays only the
        events journaled *after* it (each re-applied durably, so the plan
        rows and cursor catch up and a second crash mid-resume is just
        another resume).  The result is bit-identical to a planner that
        never crashed — including after a SIGKILL between an event's
        durable append and its plan commit — and resuming twice is
        idempotent.
        """
        found = store.latest_checkpoint(stream_id)
        if found is None:
            raise ValueError(f"stream {stream_id!r} has no checkpoint to resume from")
        _, state = found
        planner = cls.restore(state, database, function, model=model)
        planner._store = store
        planner._stream_id = str(stream_id)
        if checkpoint_every is not None:
            planner.checkpoint_every = int(checkpoint_every)
        for seq, payload in store.events(stream_id, start_seq=planner.events_applied):
            if seq != planner.events_applied:
                raise ValueError(
                    f"stream {stream_id!r} has an event gap: expected seq "
                    f"{planner.events_applied}, found {seq}"
                )
            planner._durable_apply(event_from_dict(payload))
        return planner
