"""Deterministic journal replay with warm-vs-cold timing and divergence metrics.

:func:`replay_journal` drives a :class:`~repro.streaming.planner.
StreamingPlanner` through a :class:`~repro.streaming.events.Journal`
event by event.  For every event it records the incremental re-solve's
wall-clock time and mode and — unless disabled — times a from-scratch
solve on the identical post-event state and compares the two plans
(set-level Jaccard similarity, symmetric-difference size, objective
values and their gap).  Everything the planner does is deterministic, so
replaying the same journal twice produces byte-identical plan sequences;
:func:`plan_signature` exposes exactly the bytes to compare.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.streaming.events import Journal
from repro.streaming.planner import StreamingPlanner

__all__ = ["ReplayResult", "apply_and_record", "replay_journal", "plan_signature"]


@dataclass
class ReplayResult:
    """Everything one journal replay measured.

    ``records`` has one dict per event: the event ``kind``, the planner's
    re-solve ``mode`` and kept-prefix length, ``warm_seconds``, the warm
    plan, and — when the cold comparison ran — ``cold_seconds``, the cold
    plan, ``jaccard`` / ``symmetric_difference`` between the two, both
    objective values and their absolute gap.  The totals summarize the
    headline: how much wall-clock the warm path spent versus the per-event
    cold solves, and their ratio (``speedup``).
    """

    records: List[Dict[str, object]] = field(default_factory=list)
    warm_seconds: float = 0.0
    cold_seconds: float = 0.0
    cold_fallbacks: int = 0
    warm_solves: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Cold wall-clock over warm wall-clock (``inf`` when warm cost nothing)."""
        if self.warm_seconds <= 0.0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds

    def plans(self) -> List[List[int]]:
        """The warm plan after every event, in journal order."""
        return [list(record["plan"]) for record in self.records]

    def divergence_summary(self) -> Dict[str, float]:
        """Aggregate plan-divergence metrics over the compared events."""
        compared = [r for r in self.records if "jaccard" in r]
        if not compared:
            return {"events_compared": 0}
        jaccards = [float(r["jaccard"]) for r in compared]
        gaps = [float(r["objective_gap"]) for r in compared]
        return {
            "events_compared": len(compared),
            "min_jaccard": min(jaccards),
            "mean_jaccard": sum(jaccards) / len(jaccards),
            "max_objective_gap": max(gaps),
            "exact_plan_matches": sum(
                1 for r in compared if r["plan"] == r["cold_plan"]
            ),
        }

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``repro stream replay`` output)."""
        return {
            "metadata": dict(self.metadata),
            "warm_seconds": self.warm_seconds,
            "cold_seconds": self.cold_seconds,
            "speedup": self.speedup,
            "warm_solves": self.warm_solves,
            "cold_fallbacks": self.cold_fallbacks,
            "divergence": self.divergence_summary(),
            "records": list(self.records),
        }


def plan_signature(result: ReplayResult) -> bytes:
    """Canonical bytes of the per-event plan sequence.

    Two replays of the same journal must produce equal signatures — the
    determinism guarantee the acceptance tests check.  Wall-clock fields
    are deliberately excluded; only the plans enter the signature.
    """
    return json.dumps(result.plans(), separators=(",", ":")).encode("ascii")


def apply_and_record(
    planner: StreamingPlanner,
    event,
    result: ReplayResult,
    compare_cold: bool = True,
    clock: Callable[[], float] = time.perf_counter,
) -> Dict[str, object]:
    """Apply one event, append its record to ``result`` and return it.

    The shared per-event measurement step of :func:`replay_journal` and
    the durable runners in :mod:`repro.store.runner` — both must record
    identically so their :func:`plan_signature` bytes are comparable.
    """
    started = clock()
    info = planner.apply(event)
    warm_elapsed = clock() - started
    record: Dict[str, object] = {
        "kind": info["kind"],
        "mode": info["mode"],
        "prefix_kept": info["prefix_kept"],
        "warm_seconds": warm_elapsed,
        "plan": list(info["plan"]),
    }
    result.warm_seconds += warm_elapsed
    if info["mode"] == "cold":
        result.cold_fallbacks += 1
    else:
        result.warm_solves += 1
    if compare_cold:
        started = clock()
        cold = planner.cold_plan()
        cold_elapsed = clock() - started
        warm_set, cold_set = set(planner.plan), set(cold)
        union = warm_set | cold_set
        warm_objective = planner.objective()
        cold_objective = planner.objective(cold)
        record.update(
            {
                "cold_seconds": cold_elapsed,
                "cold_plan": list(cold),
                "jaccard": (
                    len(warm_set & cold_set) / len(union) if union else 1.0
                ),
                "symmetric_difference": len(warm_set ^ cold_set),
                "objective_warm": warm_objective,
                "objective_cold": cold_objective,
                "objective_gap": abs(warm_objective - cold_objective),
            }
        )
        result.cold_seconds += cold_elapsed
    result.records.append(record)
    return record


def replay_journal(
    journal: Journal,
    planner_factory: Callable[[], StreamingPlanner],
    compare_cold: bool = True,
    clock: Callable[[], float] = time.perf_counter,
) -> ReplayResult:
    """Re-run ``journal`` through a fresh planner, measuring every event.

    ``planner_factory`` builds the planner (fresh state per replay, so
    repeated replays are independent and deterministic).  With
    ``compare_cold`` a from-scratch solve runs after every event on the
    same post-event state — the baseline the incremental path is measured
    against; without it the replay only times the warm path (used for the
    second leg of the byte-identity check, where cold solves would double
    the runtime for no information).
    """
    planner = planner_factory()
    result = ReplayResult(metadata=dict(journal.metadata))
    result.metadata.setdefault("track", planner.track)
    for event in journal:
        apply_and_record(planner, event, result, compare_cold, clock)
    return result
