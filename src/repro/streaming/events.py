"""The append-only event model for the streaming re-planning engine.

Four event kinds cover everything that can change out-of-band between two
solves:

``reveal``
    An object's true value became known (someone cleaned it outside the
    plan, or fresh data confirmed it).
``cost_change``
    An object's cleaning cost moved (a source went behind a paywall, an
    expert became available).
``insert``
    A new uncertain object arrived at the end of the database.
``remove``
    An object left the feed.  Removal is modeled as a *tombstone* — the
    object is revealed at its current value (its variance contribution
    drops to zero) and its cost is set to ``inf`` (it can never be
    selected again) — so every existing positional claim index stays
    valid.

Events are frozen dataclasses with a plain-dict wire form
(:func:`event_to_dict` / :func:`event_from_dict`) and one-line JSONL
persistence through :class:`Journal`, following the append-only
journal/resume-state idiom.  :func:`synthesize_journal` draws a
deterministic mixed event stream from a seeded generator for the replay
benchmarks.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

try:  # POSIX-only; Windows falls back to unlocked appends.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import numpy as np

from repro.resilience.degradation import record_degradation
from repro.resilience.faults import maybe_torn_write
from repro.uncertainty.database import UncertainDatabase

__all__ = [
    "RevealEvent",
    "CostChangeEvent",
    "InsertEvent",
    "RemoveEvent",
    "StreamEvent",
    "event_to_dict",
    "event_from_dict",
    "Journal",
    "JournalCorruptionError",
    "synthesize_journal",
]


class JournalCorruptionError(ValueError):
    """A JSONL journal line failed to parse (torn write, truncation, noise).

    Carries ``line_number`` (1-based) and ``byte_offset`` (the offset of the
    corrupt line's first byte in the file) so the broken region can be
    inspected or truncated by hand.
    """

    def __init__(self, message: str, line_number: int, byte_offset: int):
        super().__init__(
            f"{message} (line {line_number}, byte offset {byte_offset})"
        )
        self.line_number = int(line_number)
        self.byte_offset = int(byte_offset)


@dataclass(frozen=True)
class RevealEvent:
    """Object ``index``'s true value became known to be ``value``."""

    index: int
    value: float
    kind: str = "reveal"


@dataclass(frozen=True)
class CostChangeEvent:
    """Object ``index``'s cleaning cost changed to ``cost`` (must be positive)."""

    index: int
    cost: float
    kind: str = "cost_change"


@dataclass(frozen=True)
class InsertEvent:
    """A new normal-error object appended at the end of the database.

    ``weight`` is the coefficient the linear claim tracks gain for the new
    object (0 keeps the claim unchanged); the decomposed track ignores it —
    a claim-quality measure never references objects that postdate it.
    """

    name: str
    current_value: float
    mean: float
    std: float
    cost: float = 1.0
    weight: float = 0.0
    kind: str = "insert"


@dataclass(frozen=True)
class RemoveEvent:
    """Object ``index`` left the feed (tombstoned: revealed + infinite cost)."""

    index: int
    kind: str = "remove"


StreamEvent = Union[RevealEvent, CostChangeEvent, InsertEvent, RemoveEvent]
StreamEvent.__doc__ = (
    "Any journal entry: one of the four event dataclasses above "
    "(a :data:`typing.Union` alias, not a base class)."
)

_EVENT_TYPES = {
    "reveal": RevealEvent,
    "cost_change": CostChangeEvent,
    "insert": InsertEvent,
    "remove": RemoveEvent,
}


def event_to_dict(event: StreamEvent) -> Dict[str, object]:
    """The event's plain-dict wire form (``kind`` first, JSON-safe values)."""
    if isinstance(event, RevealEvent):
        return {"kind": "reveal", "index": int(event.index), "value": float(event.value)}
    if isinstance(event, CostChangeEvent):
        return {"kind": "cost_change", "index": int(event.index), "cost": float(event.cost)}
    if isinstance(event, InsertEvent):
        return {
            "kind": "insert",
            "name": str(event.name),
            "current_value": float(event.current_value),
            "mean": float(event.mean),
            "std": float(event.std),
            "cost": float(event.cost),
            "weight": float(event.weight),
        }
    if isinstance(event, RemoveEvent):
        return {"kind": "remove", "index": int(event.index)}
    raise TypeError(f"not a stream event: {event!r}")


def event_from_dict(payload: Dict[str, object]) -> StreamEvent:
    """Rebuild an event from its :func:`event_to_dict` wire form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    event_type = _EVENT_TYPES.get(kind)  # type: ignore[arg-type]
    if event_type is None:
        raise ValueError(f"unknown event kind {kind!r}")
    return event_type(**data)  # type: ignore[arg-type]


class Journal:
    """An append-only, replayable sequence of stream events.

    ``metadata`` carries whatever the producer wants replays to know (the
    synthesis seed, the base-database size, ...).  The JSONL form is one
    event per line, preceded by a single ``{"journal": {...}}`` header line
    when metadata is present — so ``tail -f`` on a live journal shows
    events, and appending is a pure file append.
    """

    def __init__(
        self,
        events: Iterable[StreamEvent] = (),
        metadata: Optional[Dict[str, object]] = None,
    ):
        self.events: Tuple[StreamEvent, ...] = tuple(events)
        self.metadata: Dict[str, object] = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Journal)
            and self.events == other.events
            and self.metadata == other.metadata
        )

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        return f"Journal(events={len(self.events)}, kinds={kinds})"

    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the journal as JSONL (header line only when metadata exists)."""
        path = Path(path)
        lines: List[str] = []
        if self.metadata:
            lines.append(json.dumps({"journal": self.metadata}, sort_keys=True))
        for event in self.events:
            lines.append(json.dumps(event_to_dict(event), sort_keys=True))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path], recover: bool = False) -> "Journal":
        """Read a journal previously written by :meth:`to_jsonl` / :meth:`append`.

        A crash mid-append leaves a *torn* final line (or arbitrary noise
        after a partial flush).  By default any unparsable line raises
        :class:`JournalCorruptionError` naming its line number and byte
        offset.  With ``recover=True`` the journal is instead truncated to
        the longest valid prefix: everything before the first corrupt line
        is kept, the rest is dropped with a :class:`RuntimeWarning` and a
        ``("journal", "truncated")`` degradation counter — the graceful
        path crash recovery uses.
        """
        path = Path(path)
        events: List[StreamEvent] = []
        metadata: Dict[str, object] = {}
        offset = 0
        with path.open("rb") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line_offset = offset
                offset += len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line.decode("utf-8"))
                    if not isinstance(payload, dict):
                        raise ValueError(f"journal line is not an object: {payload!r}")
                    if "journal" in payload and "kind" not in payload:
                        metadata.update(payload["journal"])
                        continue
                    events.append(event_from_dict(payload))
                except (ValueError, TypeError, UnicodeDecodeError) as error:
                    if not recover:
                        raise JournalCorruptionError(
                            f"corrupt journal line in {path}: {error}",
                            line_number,
                            line_offset,
                        ) from error
                    record_degradation("journal", "truncated")
                    warnings.warn(
                        f"journal {path} corrupt at line {line_number} "
                        f"(byte offset {line_offset}): kept the "
                        f"{len(events)}-event valid prefix, dropped the rest",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    break
        return cls(events, metadata)

    @staticmethod
    def append(path: Union[str, Path], event: StreamEvent, *, lock: bool = True) -> None:
        """Append one event to a JSONL journal file.

        The append is guarded by an exclusive ``flock`` on the journal file
        (when the platform provides :mod:`fcntl`), so concurrent appenders —
        each with their own file handle — serialize whole lines instead of
        interleaving partial ones.  Each append is a single buffered write
        flushed before the lock is released, which keeps the line atomic
        with respect to other *locked* appenders; pass ``lock=False`` only
        on paths already serialized by a higher-level writer lock.

        This is also the write the fault harness tears (site ``journal``):
        under an active :class:`~repro.resilience.faults.FaultPlan` the line
        may be written half-finished without its newline — exactly the state
        a crash mid-append leaves — which :meth:`from_jsonl`'s recovery mode
        must absorb.
        """
        line = json.dumps(event_to_dict(event), sort_keys=True) + "\n"
        line, _ = maybe_torn_write(line)
        with Path(path).open("a", encoding="utf-8") as handle:
            use_lock = lock and fcntl is not None
            if use_lock:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(line)
                handle.flush()
            finally:
                if use_lock:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def synthesize_journal(
    database: UncertainDatabase,
    events: int,
    seed: int,
    mix: Optional[Dict[str, float]] = None,
    cost_range: Tuple[float, float] = (0.5, 2.0),
    insert_weight: float = 0.0,
) -> Journal:
    """A deterministic mixed event stream over ``database``.

    ``mix`` weights the four event kinds (default: reveals dominate, the
    way live cleaning feeds behave).  Reveals draw the revealed value from
    the object's own distribution; cost changes scale the object's
    *original* cost by a uniform factor from ``cost_range``; inserts append
    normal objects named ``stream0, stream1, ...`` whose parameters are
    drawn near the base population; removes tombstone a random live object.
    Reveal/remove targets are drawn without replacement from the original
    objects — once none are left, the synthesizer falls back to cost
    changes so the journal always reaches ``events`` entries.  Everything
    is driven by one ``np.random.default_rng(seed)``, so the same inputs
    always produce the identical journal.
    """
    if events < 0:
        raise ValueError(f"events must be nonnegative, got {events}")
    rng = np.random.default_rng(seed)
    weights = {"reveal": 0.55, "cost_change": 0.25, "insert": 0.1, "remove": 0.1}
    if mix:
        unknown = set(mix) - set(weights)
        if unknown:
            raise ValueError(f"unknown event kinds in mix: {sorted(unknown)}")
        weights.update({kind: float(share) for kind, share in mix.items()})
    kinds = sorted(weights)
    shares = np.array([weights[kind] for kind in kinds], dtype=float)
    if shares.sum() <= 0:
        raise ValueError("event mix must have positive total weight")
    shares = shares / shares.sum()

    n = len(database)
    live = list(range(n))  # original objects not yet revealed or removed
    stream: List[StreamEvent] = []
    inserts = 0
    base_means = float(np.mean(database.means)) if n else 0.0
    base_stds = float(np.mean(database.stds)) if n else 1.0
    for _ in range(events):
        kind = kinds[int(rng.choice(len(kinds), p=shares))]
        if kind in ("reveal", "remove") and not live:
            kind = "cost_change"
        if kind == "reveal":
            position = int(rng.integers(len(live)))
            index = live.pop(position)
            value = float(database[index].sample(rng))
            stream.append(RevealEvent(index=index, value=value))
        elif kind == "remove":
            position = int(rng.integers(len(live)))
            index = live.pop(position)
            stream.append(RemoveEvent(index=index))
        elif kind == "cost_change":
            index = int(rng.integers(n)) if n else 0
            factor = float(rng.uniform(*cost_range))
            stream.append(
                CostChangeEvent(index=index, cost=float(database.costs[index]) * factor)
            )
        else:  # insert
            mean = base_means + float(rng.normal(scale=max(base_stds, 1e-6)))
            std = abs(float(rng.normal(loc=base_stds, scale=0.25 * max(base_stds, 1e-6))))
            std = max(std, 1e-3)
            stream.append(
                InsertEvent(
                    name=f"stream{inserts}",
                    current_value=mean + float(rng.normal(scale=std)),
                    mean=mean,
                    std=std,
                    cost=float(rng.uniform(0.5, 5.0)),
                    weight=float(insert_weight),
                )
            )
            inserts += 1
    return Journal(
        stream,
        metadata={"seed": int(seed), "base_n": int(n), "events": int(events)},
    )
