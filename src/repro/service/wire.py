"""The JSON wire format of the cleaning-recommendation service.

Everything the service says is canonical JSON (key-sorted, no whitespace)
so two byte-equal responses are the same response.  The one piece of
cryptographic bookkeeping lives here too: :func:`plan_signature_hex`, the
SHA-256 stamp over ``{"plan": [...], "version": v}`` that every plan read
and ingest ack carries.  The concurrent-history harness replays the
journal serially and recomputes the same stamp — a served plan that was
torn between versions, or mislabeled with a version it does not belong
to, cannot produce a matching signature.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ServiceError",
    "canonical_json",
    "parse_json_body",
    "plan_signature_hex",
]


class ServiceError(Exception):
    """A request failure with an HTTP status and a machine-readable code.

    Raised anywhere inside request handling; the HTTP layer maps it to a
    JSON error body ``{"error": message, "code": code}`` with the carried
    status.  ``retryable`` marks failures a client may safely re-send with
    the same idempotency key (503-style transient conditions).
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str = "bad_request",
        retryable: bool = False,
    ):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.retryable = bool(retryable)

    def body(self) -> Dict[str, object]:
        """The JSON error body the HTTP layer serializes."""
        payload: Dict[str, object] = {"error": str(self), "code": self.code}
        if self.retryable:
            payload["retryable"] = True
        return payload


def canonical_json(payload: object) -> str:
    """Key-sorted, whitespace-free JSON — the service's only wire form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def plan_signature_hex(version: int, plan: Sequence[int]) -> str:
    """The SHA-256 stamp binding ``plan`` to its ``version``.

    Computed over the canonical JSON of ``{"plan": [...], "version": v}``;
    the serial replay recomputes it from the journal, so a response whose
    signature matches was byte-for-byte the serial plan at that version.
    """
    text = canonical_json({"plan": [int(i) for i in plan], "version": int(version)})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def parse_json_body(raw: bytes, max_bytes: int = 1 << 20) -> Dict[str, object]:
    """Parse a request body as a JSON object, mapping failures to 400s."""
    if len(raw) > max_bytes:
        raise ServiceError(413, f"request body exceeds {max_bytes} bytes", "too_large")
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(400, f"malformed JSON body: {error}", "bad_json") from None
    if not isinstance(payload, dict):
        raise ServiceError(400, "request body must be a JSON object", "bad_json")
    return payload


def require_number(
    payload: Dict[str, object],
    field: str,
    minimum: Optional[float] = None,
    default: Optional[float] = None,
) -> float:
    """A numeric field with a lower bound, or a 400 naming the field."""
    value = payload.get(field, default)
    if value is None:
        raise ServiceError(400, f"missing required field {field!r}", "missing_field")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(400, f"field {field!r} must be a number", "bad_field")
    number = float(value)
    if minimum is not None and number < minimum:
        raise ServiceError(
            400, f"field {field!r} must be >= {minimum:g}, got {number:g}", "bad_field"
        )
    return number
