"""Sessions: one claim + workload bound to one durable stream.

A *session* is the unit the service multiplexes: a deterministic workload
(database + claim function, rebuilt bit-identically from its config), a
:class:`~repro.streaming.planner.StreamingPlanner` owning the live plan,
and a :class:`~repro.store.sqlite_store.PlanStore` file making every
ingested event durable before it is applied.  The concurrency contract:

* **Single writer, many readers** — each session carries a
  readers-writer lock.  Ingests take the write side (the planner's warm
  state mutates), plan reads take the read side, and arbitrary-budget
  read-backs additionally serialize on a small read-back lock because the
  solver's resume loop shares the planner's calculator memos.
* **Monotonic versions** — a session's plan version is exactly
  :attr:`~repro.streaming.planner.StreamingPlanner.version` (events
  folded in).  Every response carries ``version`` plus the SHA-256
  :func:`~repro.service.wire.plan_signature_hex` binding the plan bytes
  to it, which is what the history harness replays against.
* **Exactly-once ingest** — a client may send an ``idempotency_key``;
  the key row commits in the *same transaction* as the event row, so a
  retry after any crash or injected fault either finds nothing durable
  (and ingests fresh) or finds the key and gets the original ack
  replayed from the plan row at its sequence number.
* **Storage-backed mode** — ``storage_backed: true`` sessions page their
  stat columns into the store
  (:class:`~repro.store.columns.DatabasePageStore`) and serve from the
  lazily-loading :class:`~repro.store.columns.StoredDatabase`; reveal and
  cost events write the dirty page back after the durable apply.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.claims.functions import LinearClaim
from repro.core.solver import SelectionTrace
from repro.service.wire import ServiceError, plan_signature_hex, require_number
from repro.store.columns import DatabasePageStore
from repro.store.sqlite_store import PlanStore
from repro.streaming.events import (
    CostChangeEvent,
    InsertEvent,
    RemoveEvent,
    RevealEvent,
    StreamEvent,
    event_from_dict,
    event_to_dict,
)
from repro.streaming.planner import StreamingPlanner
from repro.uncertainty.database import UncertainDatabase

__all__ = ["Session", "SessionConfig", "SessionManager"]

#: The stream-metadata key a session's config is persisted under.
_CONFIG_KEY = "service_session"

#: Workload kinds a session config may name.
WORKLOAD_KINDS = ("linear_normal", "urx_uniqueness")


class _RWLock:
    """A readers-writer lock: many concurrent readers, one exclusive writer.

    Writer-preferring: once a writer is waiting, new readers queue behind
    it, so a stream of plan reads cannot starve ingests.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    class _Side:
        def __init__(self, lock: "_RWLock", write: bool):
            self._lock, self._write = lock, write

        def __enter__(self):
            (self._lock.acquire_write if self._write else self._lock.acquire_read)()

        def __exit__(self, *exc):
            (self._lock.release_write if self._write else self._lock.release_read)()

    def read(self) -> "_RWLock._Side":
        """Context manager for the shared (reader) side."""
        return self._Side(self, write=False)

    def write(self) -> "_RWLock._Side":
        """Context manager for the exclusive (writer) side."""
        return self._Side(self, write=True)


@dataclass(frozen=True)
class SessionConfig:
    """The deterministic recipe a session's workload is rebuilt from.

    Everything a fresh process needs to reconstruct the *initial* database
    and claim function bit-identically lives here (and is persisted in the
    stream's metadata): the workload ``kind``, its size ``n`` and ``seed``,
    the solve ``budget``, and — for the uniqueness workload — the claim's
    ``gamma`` / ``window_width``.  ``storage_backed`` selects the paged
    :class:`~repro.store.columns.StoredDatabase` mode (all-normal
    workloads only).
    """

    kind: str = "linear_normal"
    n: int = 60
    seed: int = 0
    budget: float = 10.0
    gamma: float = 170.0
    window_width: int = 4
    storage_backed: bool = False
    page_size: int = 1024
    checkpoint_every: int = 10

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ServiceError(
                400, f"unknown workload kind {self.kind!r}; expected one of {WORKLOAD_KINDS}", "bad_kind"
            )
        if self.n < 2:
            raise ServiceError(400, f"n must be at least 2, got {self.n}", "bad_field")
        if not self.budget > 0:
            raise ServiceError(400, f"budget must be positive, got {self.budget}", "bad_field")
        if self.page_size < 1:
            raise ServiceError(400, f"page_size must be positive, got {self.page_size}", "bad_field")

    def to_dict(self) -> Dict[str, object]:
        """The JSON form persisted in stream metadata."""
        return {
            "kind": self.kind,
            "n": int(self.n),
            "seed": int(self.seed),
            "budget": float(self.budget),
            "gamma": float(self.gamma),
            "window_width": int(self.window_width),
            "storage_backed": bool(self.storage_backed),
            "page_size": int(self.page_size),
            "checkpoint_every": int(self.checkpoint_every),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SessionConfig":
        """Parse and validate a config from a request body / metadata dict."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(400, f"unknown config fields {unknown}", "bad_field")
        merged = dict(payload)
        if "budget" in merged:
            merged["budget"] = require_number(merged, "budget")
        try:
            return cls(
                kind=str(merged.get("kind", "linear_normal")),
                n=int(merged.get("n", 60)),
                seed=int(merged.get("seed", 0)),
                budget=float(merged.get("budget", 10.0)),
                gamma=float(merged.get("gamma", 170.0)),
                window_width=int(merged.get("window_width", 4)),
                storage_backed=bool(merged.get("storage_backed", False)),
                page_size=int(merged.get("page_size", 1024)),
                checkpoint_every=int(merged.get("checkpoint_every", 10)),
            )
        except (TypeError, ValueError) as error:
            raise ServiceError(400, f"malformed session config: {error}", "bad_field") from None

    def build_inputs(self) -> Tuple[UncertainDatabase, object]:
        """The deterministic (database, claim function) pair for this config.

        ``linear_normal`` draws an all-normal array-backed database and a
        positive-weight linear claim from one seeded generator (the fast
        modular track, storable as column pages); ``urx_uniqueness`` is the
        paper's duplicity workload over the URx synthetic dataset (the
        decomposed track, discrete supports, in-memory only).
        """
        if self.kind == "linear_normal":
            rng = np.random.default_rng(self.seed)
            values = rng.normal(10.0, 2.0, self.n)
            stds = rng.uniform(0.5, 2.0, self.n)
            costs = rng.uniform(1.0, 3.0, self.n)
            weights = rng.uniform(0.5, 1.5, self.n)
            database = UncertainDatabase.from_normal_arrays(values, stds, costs=costs)
            return database, LinearClaim.from_vector(weights)
        from repro.datasets.synthetic import generate_urx
        from repro.experiments.workloads import uniqueness_workload

        workload = uniqueness_workload(
            generate_urx(self.n, self.seed),
            window_width=self.window_width,
            gamma=self.gamma,
        )
        return workload.database, workload.query_function


class Session:
    """One live session: planner + store + locks (see the module docstring)."""

    def __init__(
        self,
        session_id: str,
        config: SessionConfig,
        store: PlanStore,
        planner: StreamingPlanner,
        pages: Optional[DatabasePageStore] = None,
    ):
        self.session_id = str(session_id)
        self.config = config
        self.store = store
        self.planner = planner
        self.pages = pages
        self._lock = _RWLock()
        # Arbitrary-budget read-backs re-run the solver loop, which shares
        # the planner's calculator memos — concurrent *readers* must take
        # turns on it (writers are already excluded by the RW lock).
        self._readback_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def snapshot_plan(
        self, budget: Optional[float] = None, want_objective: bool = False
    ) -> Dict[str, object]:
        """The current plan (or its exact read-back at a smaller budget).

        Taken under the read lock, so the ``(version, plan)`` pair is
        always a committed planner state — never a half-applied event.
        The default budget returns the live plan by reference-copy; any
        other budget is answered from the anytime
        :class:`~repro.core.solver.SelectionTrace` (affordable step prefix
        + the solver's own resume loop), which is exactly the plan a
        from-scratch solve at that budget would produce.
        """
        with self._lock.read():
            planner = self.planner
            version = planner.version
            max_budget = float(planner.budget)
            if budget is None or abs(float(budget) - max_budget) <= 1e-12:
                served_budget = max_budget
                plan = [int(i) for i in planner.plan]
            else:
                served_budget = float(budget)
                if not served_budget > 0:
                    raise ServiceError(
                        400, f"budget must be positive, got {served_budget:g}", "bad_field"
                    )
                if served_budget > max_budget + 1e-9:
                    raise ServiceError(
                        400,
                        f"budget {served_budget:g} exceeds the session budget "
                        f"{max_budget:g}; the anytime trace only reads back smaller budgets",
                        "bad_field",
                    )
                with self._readback_lock:
                    plan = [int(i) for i in self._trace().indices_at(served_budget)]
            response: Dict[str, object] = {
                "session": self.session_id,
                "version": version,
                "budget": served_budget,
                "plan": plan,
                "signature": plan_signature_hex(version, plan),
            }
            if want_objective:
                with self._readback_lock:
                    response["objective"] = float(self.planner.objective(plan))
            return response

    def _trace(self) -> SelectionTrace:
        """The anytime trace over the planner's live step log."""
        planner = self.planner
        solver = planner._solver()
        database = planner.database

        def resume(prefix: List[int], budget: float) -> List[int]:
            return solver._run(database, budget, initial_selection=prefix)

        return SelectionTrace(
            "streaming", planner.budget, planner.steps, database, resume
        )

    def info(self) -> Dict[str, object]:
        """Session metadata: config, version, counters, storage state."""
        with self._lock.read():
            planner = self.planner
            # After events the live database is an overlay; the stored
            # (lazily loading) base is the overlay chain's root.
            root = planner.database._overlay_base or planner.database
            loaded = (
                root.loaded_columns()
                if self.pages is not None and hasattr(root, "loaded_columns")
                else None
            )
            return {
                "session": self.session_id,
                "config": self.config.to_dict(),
                "version": planner.version,
                "track": planner.track,
                "n": len(planner.database),
                "budget": float(planner.budget),
                "events": self.store.event_count(self.session_id),
                "warm_solves": planner.warm_solves,
                "cold_solves": planner.cold_solves,
                "last_mode": planner.last_mode,
                "storage_backed": self.pages is not None,
                "loaded_columns": loaded,
            }

    def objects(self, start: int = 0, count: int = 50) -> Dict[str, object]:
        """A slice of the session's objects (current view, post-events)."""
        start, count = int(start), int(count)
        if start < 0 or count < 1:
            raise ServiceError(400, "start must be >= 0 and count >= 1", "bad_field")
        with self._lock.read():
            database = self.planner.database
            n = len(database)
            stop = min(n, start + count)
            names = database.names[start:stop]
            return {
                "session": self.session_id,
                "version": self.planner.version,
                "n": n,
                "start": start,
                "objects": [
                    {
                        "index": index,
                        "name": names[index - start],
                        "current_value": float(database._current_values[index]),
                        "std": float(database._stds[index]),
                        "cost": float(database._costs[index]),
                    }
                    for index in range(start, stop)
                ],
            }

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def ingest(
        self, payload: Dict[str, object], idempotency_key: Optional[str] = None
    ) -> Dict[str, object]:
        """Durably journal one event, re-solve, and ack with the new plan.

        The sequence under the write lock:

        1. an already-seen ``idempotency_key`` short-circuits to a replay
           of the original ack (read from the plan row at its seq);
        2. the event is parsed and validated *before* anything durable —
           a 400 never leaves a journal row behind;
        3. the event row and the key row commit in one transaction;
        4. the planner's crash-safe apply folds the event in (warm-start
           re-solve, plan row + cursor + periodic checkpoint);
        5. storage-backed sessions write the dirty column page back.
        """
        with self._lock.write():
            if idempotency_key is not None:
                seen = self.store.idempotency_seq(self.session_id, idempotency_key)
                if seen is not None:
                    return self._replay_ack(seen, idempotency_key)
            event = self._parse_event(payload)
            seq = self.planner.events_applied
            with self.store.transaction():
                self.store.append_event(self.session_id, seq, event_to_dict(event))
                if idempotency_key is not None:
                    self.store.record_idempotency_key(
                        self.session_id, idempotency_key, seq
                    )
            summary = self.planner._durable_apply(event)
            self._write_back(event)
            plan = [int(i) for i in summary["plan"]]
            version = self.planner.version
            return {
                "session": self.session_id,
                "seq": seq,
                "version": version,
                "mode": summary["mode"],
                "prefix_kept": int(summary["prefix_kept"]),
                "plan": plan,
                "signature": plan_signature_hex(version, plan),
            }

    def _replay_ack(self, seq: int, idempotency_key: str) -> Dict[str, object]:
        """Reconstruct the ack a key's original ingest returned."""
        record = None
        for row_seq, row in self.store.plan_records(self.session_id, upto_seq=seq):
            if row_seq == seq:
                record = row
                break
        if record is None:
            # The key committed with its event but the plan row has not
            # landed yet (a crash happened in between and resume has not
            # caught up) — tell the client to retry, not to re-send.
            raise ServiceError(
                503,
                f"event {seq} is journaled but its plan is not yet durable; retry",
                "not_yet_applied",
                retryable=True,
            )
        version = int(seq) + 1
        plan = [int(i) for i in record["plan"]]
        return {
            "session": self.session_id,
            "seq": int(seq),
            "version": version,
            "mode": str(record.get("mode", "unknown")),
            "prefix_kept": int(record.get("prefix_kept", 0)),
            "plan": plan,
            "signature": plan_signature_hex(version, plan),
            "idempotent_replay": True,
        }

    def _parse_event(self, payload: Dict[str, object]) -> StreamEvent:
        """Parse + fully validate an event body (400s, nothing durable)."""
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ServiceError(400, "event body must carry a 'kind' field", "bad_event")
        try:
            event = event_from_dict(dict(payload))
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(400, f"malformed event: {error}", "bad_event") from None
        n = len(self.planner.database)
        index = getattr(event, "index", None)
        if index is not None and not 0 <= int(index) < n:
            raise ServiceError(
                400, f"object index {index} out of range for n={n}", "bad_event"
            )
        if isinstance(event, InsertEvent) and event.name in self.planner.database:
            raise ServiceError(
                400, f"object name {event.name!r} already exists", "bad_event"
            )
        try:
            self.planner._validate_event(event)
        except (TypeError, ValueError) as error:
            raise ServiceError(400, str(error), "bad_event") from None
        return event

    def _write_back(self, event: StreamEvent) -> None:
        """Dirty-page writeback for storage-backed sessions (no-op otherwise)."""
        if self.pages is None:
            return
        if isinstance(event, RevealEvent):
            self.pages.write_back_reveal(int(event.index), float(event.value))
        elif isinstance(event, CostChangeEvent):
            self.pages.write_back_cost(int(event.index), float(event.cost))
        elif isinstance(event, RemoveEvent):
            self.pages.write_back_cost(int(event.index), math.inf)
        # Inserts live as overlay appends only: the stored base columns
        # always describe the planner's *initial* database.

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release planner ownership and close the store (idempotent)."""
        self.planner.release_owner()
        self.store.close()


class SessionManager:
    """Creates, resumes, serves and deletes the sessions of one service.

    One manager owns one root directory with one ``PlanStore`` file per
    session (``<root>/<session_id>.sqlite``).  Per-file stores keep
    cross-session lock contention at zero — sessions only ever contend on
    their own locks — and make deletion a file unlink.  The manager claims
    each planner's write ownership on construction, so a second manager
    (or a stray direct user) binding the same planner fails loudly.
    """

    def __init__(self, root: str, owner: str = "service"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.owner = str(owner)
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # Creation and resume
    # ------------------------------------------------------------------ #
    def _allocate_id(self) -> str:
        while True:
            session_id = f"s{self._next_id:04d}"
            self._next_id += 1
            if session_id not in self._sessions and not (
                self.root / f"{session_id}.sqlite"
            ).exists():
                return session_id

    def create_session(self, payload: Dict[str, object]) -> Session:
        """Create a session from a config body; returns the live session."""
        config = SessionConfig.from_payload(payload)
        database, function = config.build_inputs()
        if config.storage_backed and not database.all_normal():
            raise ServiceError(
                400,
                f"workload kind {config.kind!r} is not all-normal and cannot "
                "be storage-backed",
                "bad_field",
            )
        with self._lock:
            session_id = self._allocate_id()
            store = PlanStore(
                self.root / f"{session_id}.sqlite", check_same_thread=False
            )
            pages: Optional[DatabasePageStore] = None
            try:
                if config.storage_backed:
                    pages = DatabasePageStore(store, session_id)
                    pages.save_database(database, page_size=config.page_size)
                    database = pages.open_database()
                planner = StreamingPlanner(
                    database,
                    function,
                    budget=config.budget,
                    checkpoint_every=config.checkpoint_every,
                )
                planner.bind_store(
                    store,
                    stream_id=session_id,
                    checkpoint_every=config.checkpoint_every,
                    metadata={_CONFIG_KEY: config.to_dict()},
                )
                planner.claim_owner(self.owner)
            except Exception:
                store.close()
                raise
            session = Session(session_id, config, store, planner, pages)
            self._sessions[session_id] = session
            return session

    def resume_all(self) -> List[str]:
        """Re-open every session found under the root directory.

        Each resume replays the journal past the last durable checkpoint
        (the planner's crash-safe resume), so a SIGKILL at any point —
        including between an event's journal row and its plan row —
        recovers to the exact state an uninterrupted run would hold.
        """
        resumed: List[str] = []
        for path in sorted(self.root.glob("*.sqlite")):
            session_id = path.stem
            with self._lock:
                if session_id in self._sessions:
                    continue
                store = PlanStore(path, check_same_thread=False)
                try:
                    meta = store.stream_metadata(session_id).get(_CONFIG_KEY)
                    if not isinstance(meta, dict):
                        store.close()
                        continue
                    config = SessionConfig.from_payload(meta)
                    database, function = config.build_inputs()
                    pages: Optional[DatabasePageStore] = None
                    if config.storage_backed:
                        pages = DatabasePageStore(store, session_id)
                        database = pages.open_database()
                    planner = StreamingPlanner.resume(
                        store,
                        database,
                        function,
                        stream_id=session_id,
                        checkpoint_every=config.checkpoint_every,
                    )
                    planner.claim_owner(self.owner)
                except Exception:
                    store.close()
                    raise
                self._sessions[session_id] = Session(
                    session_id, config, store, planner, pages
                )
                number = int(session_id[1:]) if session_id[1:].isdigit() else 0
                self._next_id = max(self._next_id, number + 1)
                resumed.append(session_id)
        return resumed

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def get(self, session_id: str) -> Session:
        """The live session, or a 404 ``ServiceError``."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(404, f"no session {session_id!r}", "not_found")
        return session

    def session_ids(self) -> List[str]:
        """Every live session id, sorted."""
        with self._lock:
            return sorted(self._sessions)

    def delete_session(self, session_id: str) -> None:
        """Close a session and remove its store file (404 when unknown)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServiceError(404, f"no session {session_id!r}", "not_found")
        session.close()
        for suffix in ("", "-wal", "-shm"):
            path = self.root / f"{session_id}.sqlite{suffix}"
            if path.exists():
                path.unlink()

    def close(self) -> None:
        """Close every live session (idempotent)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
