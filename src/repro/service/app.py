"""The HTTP layer: stdlib ``ThreadingHTTPServer`` over the session manager.

Zero heavy dependencies by design — ``http.server`` threads map one-to-one
onto the per-session readers-writer locks in
:mod:`repro.service.sessions`, and every request/response body is the
canonical JSON of :mod:`repro.service.wire`.  Routes:

====================================  =========================================
``GET  /healthz``                     liveness + session count
``POST /sessions``                    create a session from a config body
``GET  /sessions``                    list live session ids
``GET  /sessions/{id}``               session info (version, track, counters)
``GET  /sessions/{id}/plan``          the plan; ``?budget=`` for an anytime
                                      read-back, ``?objective=1`` to score it
``POST /sessions/{id}/events``        durable ingest (``X-Idempotency-Key``
                                      or ``"idempotency_key"`` in the body)
``GET  /sessions/{id}/objects``       object slice (``?start=&count=``)
``DELETE /sessions/{id}``             close the session, remove its store
====================================  =========================================

Fault site ``http`` injects a request failure at dispatch time — *before*
any durable write — surfaced as a 503 with ``"retryable": true``; clients
re-send with the same idempotency key and observe exactly-once ingest.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.resilience.faults import HttpRequestFault, maybe_inject
from repro.service.sessions import SessionManager
from repro.service.wire import ServiceError, canonical_json, parse_json_body
from repro.store.sqlite_store import StoreCorruptionError

__all__ = ["CleaningService", "ServiceHandler"]


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request to the session manager and serializes the answer.

    Runs on a ``ThreadingHTTPServer`` thread per connection; all shared
    state lives behind the manager's and sessions' locks, so the handler
    itself is stateless.  Every handler path funnels through
    :meth:`_dispatch`, which is where the ``http`` fault site injects and
    where every error class maps to its status code.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"

    # Quiet by default: per-request stderr lines would swamp the harness.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def manager(self) -> SessionManager:
        """The owning server's session manager."""
        return self.server.manager  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # HTTP verbs
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Serve one GET request through :meth:`_dispatch`."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        """Serve one POST request through :meth:`_dispatch`."""
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        """Serve one DELETE request through :meth:`_dispatch`."""
        self._dispatch("DELETE")

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, method: str) -> None:
        try:
            # Drain the request body up front: an error (or injected fault)
            # raised mid-route must not leave unread body bytes on the
            # keep-alive socket, where they would be parsed as the next
            # request line and corrupt the connection framing.
            length = int(self.headers.get("Content-Length") or 0)
            self._raw_body = self.rfile.read(length) if length else b""
            # The injected in-flight failure: strikes before any route
            # logic, so nothing durable can precede the 503.
            maybe_inject("http")
            status, body = self._route(method)
        except HttpRequestFault:
            status, body = 503, {
                "error": "injected in-flight request failure",
                "code": "http_fault",
                "retryable": True,
            }
        except ServiceError as error:
            status, body = error.status, error.body()
        except StoreCorruptionError as error:
            status, body = 500, {"error": str(error), "code": "store_corruption"}
        except Exception as error:  # pragma: no cover - last-resort mapping
            status, body = 500, {"error": f"{type(error).__name__}: {error}", "code": "internal"}
        self._reply(status, body)

    def _route(self, method: str) -> Tuple[int, Dict[str, object]]:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}

        if method == "GET" and parts == ["healthz"]:
            return 200, {"status": "ok", "sessions": len(self.manager.session_ids())}
        if parts and parts[0] == "sessions":
            if len(parts) == 1:
                if method == "POST":
                    session = self.manager.create_session(self._body())
                    return 201, session.snapshot_plan() | {"track": session.planner.track}
                if method == "GET":
                    return 200, {"sessions": self.manager.session_ids()}
            elif len(parts) == 2:
                session = self.manager.get(parts[1])
                if method == "GET":
                    return 200, session.info()
                if method == "DELETE":
                    self.manager.delete_session(parts[1])
                    return 200, {"deleted": parts[1]}
            elif len(parts) == 3 and method == "GET" and parts[2] == "plan":
                session = self.manager.get(parts[1])
                return 200, session.snapshot_plan(
                    budget=self._float_query(query, "budget"),
                    want_objective=query.get("objective") in ("1", "true"),
                )
            elif len(parts) == 3 and method == "POST" and parts[2] == "events":
                session = self.manager.get(parts[1])
                body = self._body()
                key = self.headers.get("X-Idempotency-Key") or body.pop(
                    "idempotency_key", None
                )
                return 200, session.ingest(body, idempotency_key=key)
            elif len(parts) == 3 and method == "GET" and parts[2] == "objects":
                session = self.manager.get(parts[1])
                return 200, session.objects(
                    start=int(query.get("start", 0)), count=int(query.get("count", 50))
                )
        raise ServiceError(404, f"no route {method} {parsed.path}", "not_found")

    # ------------------------------------------------------------------ #
    # Body / reply plumbing
    # ------------------------------------------------------------------ #
    def _body(self) -> Dict[str, object]:
        return parse_json_body(self._raw_body)

    @staticmethod
    def _float_query(query: Dict[str, str], field: str) -> Optional[float]:
        raw = query.get(field)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise ServiceError(
                400, f"query parameter {field!r} must be a number, got {raw!r}", "bad_field"
            ) from None

    def _reply(self, status: int, body: Dict[str, object]) -> None:
        payload = canonical_json(body).encode("utf-8")
        self.send_response(int(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class CleaningService:
    """The runnable server: a ``ThreadingHTTPServer`` bound to one manager.

    ``port=0`` asks the OS for a free port (the tests' default);
    :attr:`url` reports the bound address either way.  ``resume=True``
    re-opens every session found under ``root`` before serving — the
    crash-recovery path the SIGKILL harness exercises.  Use as a context
    manager or call :meth:`close`; :meth:`start_background` serves from a
    daemon thread for in-process tests, :meth:`serve_forever` blocks (the
    ``repro serve`` CLI).
    """

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        resume: bool = False,
    ):
        self.manager = SessionManager(root)
        if resume:
            self.resumed = self.manager.resume_all()
        else:
            self.resumed = []
        self._server = ThreadingHTTPServer((host, int(port)), ServiceHandler)
        self._server.daemon_threads = True
        self._server.manager = self.manager  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """The service's base URL (scheme + bound host:port)."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever()

    def start_background(self) -> "CleaningService":
        """Serve from a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name="repro-service", daemon=True
            )
            self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the serve loop (safe to call from any thread)."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def close(self) -> None:
        """Shut down, close every session and release the socket."""
        self.shutdown()
        self.manager.close()
        self._server.server_close()

    def __enter__(self) -> "CleaningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
