"""The concurrent-history harness: hammer the service, then prove it right.

Isolation bugs hide in interleavings, so the harness does what black-box
snapshot-isolation checkers do: *generate* a concurrent history (N client
threads interleaving ingests and plan reads against one live server,
recording every response), then *check* it against the serial semantics
(replay each session's durable journal strictly in order and recompute
what every response should have said).  The invariants:

* **Byte-equal plans** — every response's plan must equal the serial
  replay's plan at the response's reported version (for budget read-backs,
  the serial anytime-trace read-back at that budget), and its signature
  must be the recomputed :func:`~repro.service.wire.plan_signature_hex` —
  a torn plan or a version mislabel cannot satisfy both.
* **Versions strictly monotone per session** — the non-replayed ingest
  acks of a session must carry versions ``1..N`` exactly once each.
* **No stale reads after an ack** — per thread and session, observed
  versions never decrease: once a thread sees (or commits) version ``v``,
  every later response it gets is ``>= v``.

:func:`run_concurrent_history` produces the history;
:func:`verify_history` checks it; the subprocess helpers boot/SIGKILL a
real ``repro serve`` process for the crash-resume leg.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.solver import SelectionTrace
from repro.service.sessions import SessionConfig, _CONFIG_KEY
from repro.service.wire import plan_signature_hex
from repro.store.sqlite_store import PlanStore
from repro.streaming.events import event_from_dict
from repro.streaming.planner import StreamingPlanner

__all__ = [
    "ServiceClient",
    "run_concurrent_history",
    "verify_history",
    "start_server_subprocess",
    "kill_server",
]


class ServiceClient:
    """A thin, retrying JSON client over ``http.client`` (one per thread).

    Holds one keep-alive connection; on connection failure it reconnects
    and — for requests carrying an idempotency key — re-sends, which is
    safe exactly because the server makes keyed ingests exactly-once.
    503 responses marked ``retryable`` (injected ``http`` faults, resume
    races) are retried with a short backoff.
    """

    def __init__(self, base_url: str, timeout: float = 30.0, max_retries: int = 25):
        if base_url.startswith("http://"):
            base_url = base_url[len("http://") :]
        self.netloc = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self._connection: Optional[http.client.HTTPConnection] = None

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.netloc, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        """Drop the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        idempotency_key: Optional[str] = None,
        retry: bool = True,
    ) -> Tuple[int, Dict[str, object]]:
        """One JSON request; returns ``(status, parsed_body)``.

        Retries transient failures (connection drops, retryable 503s) up
        to ``max_retries`` times.  Non-idempotent requests (an ingest with
        no key) are *not* re-sent after a connection drop — the harness
        always keys its ingests.
        """
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"}
        if idempotency_key is not None:
            headers["X-Idempotency-Key"] = str(idempotency_key)
        attempts = self.max_retries if retry else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                self.close()
                last_error = error
                if body is not None and idempotency_key is None:
                    raise
                time.sleep(0.01 * (attempt + 1))
                continue
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status == 503 and parsed.get("retryable") and attempt + 1 < attempts:
                time.sleep(0.01 * (attempt + 1))
                continue
            return response.status, parsed
        raise RuntimeError(
            f"request {method} {path} failed after {attempts} attempts: {last_error}"
        )

    # ------------------------------------------------------------------ #
    # Convenience wrappers
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        """The liveness document (raises on non-200)."""
        status, body = self.request("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"healthz returned {status}: {body}")
        return body

    def create_session(self, **config) -> Dict[str, object]:
        """POST /sessions with ``config`` as the body."""
        status, body = self.request("POST", "/sessions", body=config)
        if status != 201:
            raise RuntimeError(f"create_session returned {status}: {body}")
        return body

    def plan(
        self, session: str, budget: Optional[float] = None, objective: bool = False
    ) -> Dict[str, object]:
        """GET the session's plan (optionally at a smaller budget)."""
        query = []
        if budget is not None:
            query.append(f"budget={budget:.12g}")
        if objective:
            query.append("objective=1")
        suffix = ("?" + "&".join(query)) if query else ""
        status, body = self.request("GET", f"/sessions/{session}/plan{suffix}")
        if status != 200:
            raise RuntimeError(f"plan read returned {status}: {body}")
        return body

    def ingest(
        self, session: str, event: Dict[str, object], idempotency_key: Optional[str] = None
    ) -> Dict[str, object]:
        """POST one event; keyed ingests survive faults and reconnects."""
        status, body = self.request(
            "POST",
            f"/sessions/{session}/events",
            body=event,
            idempotency_key=idempotency_key,
        )
        if status != 200:
            raise RuntimeError(f"ingest returned {status}: {body}")
        return body

    def info(self, session: str) -> Dict[str, object]:
        """GET the session's info document."""
        status, body = self.request("GET", f"/sessions/{session}")
        if status != 200:
            raise RuntimeError(f"info returned {status}: {body}")
        return body

    def delete(self, session: str) -> None:
        """DELETE the session."""
        status, body = self.request("DELETE", f"/sessions/{session}")
        if status != 200:
            raise RuntimeError(f"delete returned {status}: {body}")


def _thread_ops(
    session: str,
    config: SessionConfig,
    thread_id: int,
    n_ops: int,
    seed: int,
    ingest_fraction: float,
) -> List[Dict[str, object]]:
    """The deterministic op list one worker thread executes.

    Ingests are reveals and cost changes only (the two event kinds a
    storage-backed session writes pages back for); reads split between
    the full-budget plan and anytime read-backs at a random fraction of
    the budget.  Every op is a pure function of ``(seed, thread_id,
    position)``, so a run is reproducible op-for-op.
    """
    rng = np.random.default_rng((seed, thread_id))
    ops: List[Dict[str, object]] = []
    for position in range(n_ops):
        if rng.random() < ingest_fraction:
            index = int(rng.integers(0, config.n))
            if rng.random() < 0.5:
                event = {"kind": "reveal", "index": index, "value": float(rng.normal(10.0, 2.0))}
            else:
                event = {"kind": "cost_change", "index": index, "cost": float(rng.uniform(1.0, 4.0))}
            ops.append(
                {
                    "type": "ingest",
                    "event": event,
                    # Seed-scoped so two harness runs against one resumed
                    # session never collide keys across runs.
                    "key": f"s{seed}-t{thread_id}-op{position}",
                }
            )
        else:
            budget = None
            if rng.random() < 0.4:
                budget = float(config.budget * rng.uniform(0.2, 0.95))
            ops.append({"type": "read", "budget": budget})
    return ops


def run_concurrent_history(
    url: str,
    sessions: Sequence[Tuple[str, SessionConfig]],
    threads: int = 16,
    ops_per_thread: int = 200,
    seed: int = 0,
    ingest_fraction: float = 0.5,
) -> Dict[str, object]:
    """Drive ``threads`` concurrent clients and record every response.

    Threads are assigned to sessions round-robin; each runs its
    deterministic op list against its session and appends one observation
    per response (version, plan, signature, latency).  Returns
    ``{"observations": [...], "errors": [...]}`` — errors abort the
    worker that hit them and are reported, not swallowed.
    """
    observations: List[Dict[str, object]] = []
    errors: List[str] = []
    lock = threading.Lock()

    def worker(thread_id: int) -> None:
        session_id, config = sessions[thread_id % len(sessions)]
        client = ServiceClient(url)
        local: List[Dict[str, object]] = []
        try:
            ops = _thread_ops(
                session_id, config, thread_id, ops_per_thread, seed, ingest_fraction
            )
            for position, op in enumerate(ops):
                started = time.perf_counter()
                if op["type"] == "ingest":
                    body = client.ingest(
                        session_id, dict(op["event"]), idempotency_key=op["key"]
                    )
                else:
                    body = client.plan(session_id, budget=op["budget"])
                latency_ms = (time.perf_counter() - started) * 1000.0
                local.append(
                    {
                        "type": op["type"],
                        "session": session_id,
                        "thread": thread_id,
                        "position": position,
                        "version": int(body["version"]),
                        "seq": body.get("seq"),
                        "budget": body.get("budget"),
                        "plan": [int(i) for i in body["plan"]],
                        "signature": str(body["signature"]),
                        "idempotent_replay": bool(body.get("idempotent_replay", False)),
                        "latency_ms": latency_ms,
                    }
                )
        except Exception as error:  # noqa: BLE001 - reported to the caller
            with lock:
                errors.append(f"thread {thread_id}: {type(error).__name__}: {error}")
        finally:
            client.close()
            with lock:
                observations.extend(local)

    pool = [
        threading.Thread(target=worker, args=(i,), name=f"history-{i}")
        for i in range(int(threads))
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return {"observations": observations, "errors": errors}


def verify_history(root: str, observations: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Check a concurrent history against the serial journal replay.

    For every session named in ``observations``, reads the durable journal
    from its store file, replays it serially on a fresh planner rebuilt
    from the persisted config, and at each version compares every response
    the server returned at that version (plans byte-equal, signatures
    recomputed, budget read-backs re-derived from the serial anytime
    trace).  Also enforces the strictly-monotone-acks and per-thread
    monotone-reads invariants.  Returns a counters dict; the caller
    asserts on the violation counts.
    """
    root_path = Path(root)
    by_session: Dict[str, List[Dict[str, object]]] = {}
    for observation in observations:
        by_session.setdefault(str(observation["session"]), []).append(dict(observation))

    verified = 0
    plan_mismatches: List[str] = []
    signature_mismatches: List[str] = []
    version_violations: List[str] = []

    for session_id, rows in sorted(by_session.items()):
        store = PlanStore(root_path / f"{session_id}.sqlite")
        try:
            meta = store.stream_metadata(session_id).get(_CONFIG_KEY)
            config = SessionConfig.from_payload(dict(meta))
            events = store.events(session_id)
        finally:
            store.close()

        # --- invariant: non-replay ack versions are contiguous, once each
        # (1..N for a fresh session; min..min+N-1 when the history starts
        # against a resumed session that already holds events).
        ack_versions = sorted(
            int(row["version"])
            for row in rows
            if row["type"] == "ingest" and not row["idempotent_replay"]
        )
        first = ack_versions[0] if ack_versions else 1
        if ack_versions != list(range(first, first + len(ack_versions))):
            version_violations.append(
                f"{session_id}: ack versions not contiguous and duplicate-free: "
                f"{ack_versions[:10]}..."
            )

        # --- invariant: per-thread observed versions never decrease.
        per_thread: Dict[int, List[Dict[str, object]]] = {}
        for row in rows:
            per_thread.setdefault(int(row["thread"]), []).append(row)
        for thread_id, thread_rows in per_thread.items():
            thread_rows.sort(key=lambda r: int(r["position"]))
            floor = -1
            for row in thread_rows:
                version = int(row["version"])
                if version < floor:
                    version_violations.append(
                        f"{session_id}: thread {thread_id} observed version "
                        f"{version} after {floor} (stale read)"
                    )
                floor = max(floor, version)

        # --- serial replay: recompute what every response should have said.
        database, function = config.build_inputs()
        planner = StreamingPlanner(database, function, budget=config.budget)
        by_version: Dict[int, List[Dict[str, object]]] = {}
        for row in rows:
            by_version.setdefault(int(row["version"]), []).append(row)

        def check_version(version: int) -> None:
            nonlocal verified
            serial_plan = [int(i) for i in planner.plan]
            trace: Optional[SelectionTrace] = None
            for row in by_version.get(version, ()):
                expected = serial_plan
                if row["type"] == "read" and row["budget"] is not None:
                    budget = float(row["budget"])
                    if abs(budget - float(planner.budget)) > 1e-12:
                        if trace is None:
                            solver = planner._solver()
                            db = planner.database
                            trace = SelectionTrace(
                                "serial",
                                planner.budget,
                                planner.steps,
                                db,
                                lambda prefix, b: solver._run(
                                    db, b, initial_selection=prefix
                                ),
                            )
                        expected = [int(i) for i in trace.indices_at(budget)]
                observed = [int(i) for i in row["plan"]]
                if observed != expected:
                    plan_mismatches.append(
                        f"{session_id} v{version} ({row['type']}, thread "
                        f"{row['thread']}): served {observed[:8]} != serial {expected[:8]}"
                    )
                expected_signature = plan_signature_hex(version, observed)
                if str(row["signature"]) != expected_signature:
                    signature_mismatches.append(
                        f"{session_id} v{version}: signature mismatch"
                    )
                verified += 1

        check_version(0)
        for seq, payload in events:
            planner.apply(event_from_dict(payload))
            if planner.version != seq + 1:
                version_violations.append(
                    f"{session_id}: serial replay version {planner.version} "
                    f"!= seq+1 ({seq + 1})"
                )
            check_version(seq + 1)

    return {
        "responses_verified": verified,
        "plan_mismatches": plan_mismatches,
        "signature_mismatches": signature_mismatches,
        "version_violations": version_violations,
    }


# ---------------------------------------------------------------------- #
# Subprocess helpers (the SIGKILL + resume leg)
# ---------------------------------------------------------------------- #
def start_server_subprocess(
    root: str,
    resume: bool = False,
    timeout: float = 60.0,
    env: Optional[Dict[str, str]] = None,
) -> Tuple[subprocess.Popen, str]:
    """Boot ``repro serve`` in a subprocess; returns ``(process, url)``.

    Waits for the ``SERVICE LISTENING <url>`` line the CLI prints once the
    socket is bound (port 0, so concurrent tests never collide).
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--root",
        str(root),
        "--port",
        "0",
    ]
    if resume:
        command.append("--resume")
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env if env is not None else dict(os.environ),
    )
    deadline = time.monotonic() + timeout
    while True:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited with {process.returncode} before listening: "
                f"{process.stdout.read() if process.stdout else ''}"
            )
        line = process.stdout.readline() if process.stdout else ""
        if line.startswith("SERVICE LISTENING "):
            return process, line.split(" ", 2)[2].strip()
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError("server did not report a listening address in time")


def kill_server(process: subprocess.Popen) -> None:
    """SIGKILL the server subprocess — no shutdown hooks, a real crash."""
    try:
        os.kill(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait(timeout=30)
    if process.stdout is not None:
        process.stdout.close()
