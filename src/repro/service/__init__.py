"""The cleaning-recommendation service: concurrent sessions over the store.

This is the fact-checker-facing layer the paper's pipeline feeds: a
zero-heavy-dependency HTTP service (stdlib ``http.server``, JSON wire)
answering "which objects should I clean next for this claim?" to many
concurrent sessions, each bound to a durable
:class:`~repro.store.sqlite_store.PlanStore` stream.  The pieces:

* :mod:`repro.service.wire` — canonical JSON, the
  :func:`~repro.service.wire.plan_signature_hex` version-binding stamp,
  and :class:`~repro.service.wire.ServiceError` status mapping;
* :mod:`repro.service.sessions` — the session model: per-session
  readers-writer locking, monotonic plan versions, exactly-once keyed
  ingest, and the storage-backed
  :class:`~repro.store.columns.StoredDatabase` mode;
* :mod:`repro.service.app` — the routes and the runnable
  :class:`~repro.service.app.CleaningService` (``repro serve``);
* :mod:`repro.service.harness` — the concurrent-history generator and
  the serial-replay verifier that together enforce the isolation
  invariants (byte-equal plans, monotone versions, no stale reads).
"""

from repro.service.app import CleaningService, ServiceHandler
from repro.service.harness import (
    ServiceClient,
    kill_server,
    run_concurrent_history,
    start_server_subprocess,
    verify_history,
)
from repro.service.sessions import Session, SessionConfig, SessionManager
from repro.service.wire import ServiceError, canonical_json, plan_signature_hex

__all__ = [
    "CleaningService",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "Session",
    "SessionConfig",
    "SessionManager",
    "canonical_json",
    "kill_server",
    "plan_signature_hex",
    "run_concurrent_history",
    "start_server_subprocess",
    "verify_history",
]
