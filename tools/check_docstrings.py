#!/usr/bin/env python
"""D1-style docstring gate over the public API surface.

Checks that every export of the public packages — ``repro.core``,
``repro.uncertainty``, ``repro.workloads``, ``repro.claims``,
``repro.datasets``, ``repro.experiments``, ``repro.streaming``,
``repro.store``, ``repro.resilience``, ``repro.service`` — has a
docstring whose first
line is a one-line summary, and that the public methods/properties of
exported classes are documented too (pydocstyle's D101/D102/D103 scope,
without the dependency).

When ``ruff`` is importable the script first runs its ``D1`` rules over the
package ``__init__`` modules as an extra signal; the bundled checks below
are the authoritative gate either way, so the result is identical on
machines without ruff.

Exit status: 0 when clean, 1 with one line per violation otherwise.  Run
via ``make lint-docstrings`` or ``python tools/check_docstrings.py``.
"""

from __future__ import annotations

import inspect
import subprocess
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _shared_member_walk():
    """The docs builder's public-member walker — one definition of the surface.

    Loaded from docs/build_docs.py so this gate and the strict API-reference
    build can never enforce different member sets.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "_repro_docs_builder", REPO_ROOT / "docs" / "build_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.iter_public_members


iter_public_members = _shared_member_walk()

PACKAGES = [
    "repro.uncertainty",
    "repro.claims",
    "repro.core",
    "repro.datasets",
    "repro.workloads",
    "repro.experiments",
    "repro.streaming",
    "repro.store",
    "repro.resilience",
    "repro.service",
]


def _summary_ok(doc: str) -> bool:
    first = doc.strip().split("\n", 1)[0].strip()
    return bool(first)


def check_module(module_name: str) -> List[str]:
    """All docstring violations for one package's ``__all__`` exports."""
    import importlib

    problems: List[str] = []
    module = importlib.import_module(module_name)
    if not inspect.getdoc(module):
        problems.append(f"{module_name}: missing module docstring (D100)")
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name, None)
        if obj is None or inspect.ismodule(obj) or not callable(obj) and not inspect.isclass(obj):
            continue
        qualified = f"{module_name}.{name}"
        doc = inspect.getdoc(obj)
        if not doc or not _summary_ok(doc):
            code = "D101" if inspect.isclass(obj) else "D103"
            problems.append(f"{qualified}: missing/empty docstring ({code})")
            continue
        if inspect.isclass(obj):
            for member_name, target, _kind in iter_public_members(obj):
                member_doc = inspect.getdoc(target)
                if not member_doc or not _summary_ok(member_doc):
                    problems.append(
                        f"{qualified}.{member_name}: missing/empty docstring (D102)"
                    )
    return problems


def run_ruff_if_available() -> None:
    """Extra signal on machines that have ruff: D1 rules on the package inits."""
    try:
        import ruff  # noqa: F401
    except ImportError:
        return
    targets = [
        str(REPO_ROOT / "src" / package.replace(".", "/") / "__init__.py")
        for package in PACKAGES
    ]
    subprocess.run(
        [sys.executable, "-m", "ruff", "check", "--select", "D1", *targets],
        check=False,
    )


def main() -> int:
    run_ruff_if_available()
    problems: List[str] = []
    for package in PACKAGES:
        problems.extend(check_module(package))
    if problems:
        for problem in problems:
            print(problem)
        print(f"\n{len(problems)} docstring violation(s)", file=sys.stderr)
        return 1
    print(f"docstring check clean across {len(PACKAGES)} packages")
    return 0


if __name__ == "__main__":
    sys.exit(main())
