"""Figure 2: expected variance of claim uniqueness vs. budget (CDC datasets).

Paper setup: "in the last two years, the number of injuries by firearms
(resp. across four categories) is as low as Gamma"; 8 non-overlapping
perturbation windows; CDC-firearms discretized to 6 support points,
CDC-causes to 4.  Algorithms: GreedyNaive, GreedyMinVar, Best.

Expected shape: GreedyMinVar ≈ Best ≤ GreedyNaive at every budget.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure2_uniqueness_cdc
from repro.experiments.reporting import format_series_table

BUDGETS = (0.1, 0.2, 0.4, 0.6, 0.8)


@pytest.mark.benchmark(group="figure-02")
def test_fig2a_cdc_firearms(benchmark, report):
    result = run_once(
        benchmark, figure2_uniqueness_cdc, "firearms", budget_fractions=BUDGETS
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 2a (CDC-firearms): expected variance of uniqueness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9


@pytest.mark.benchmark(group="figure-02")
def test_fig2b_cdc_causes(benchmark, report):
    result = run_once(
        benchmark, figure2_uniqueness_cdc, "causes", budget_fractions=BUDGETS
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 2b (CDC-causes): expected variance of uniqueness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9
