"""Figure 6: absolute improvement of GreedyMinVar over GreedyNaive.

Same scenarios as Figures 3 (URx) and 4 (LNx); the y-axis is the amount of
expected variance GreedyMinVar removes beyond GreedyNaive, per budget and per
Gamma.  The paper's observation: the ordering of the curves follows the
initial (budget-0) uncertainty — higher initial uncertainty means larger
absolute improvement — and the improvement shrinks at both very tight and
very generous budgets.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure6_absolute_improvement
from repro.experiments.reporting import format_rows

BUDGETS = (0.1, 0.2, 0.4, 0.6, 0.8)


@pytest.mark.benchmark(group="figure-06")
def test_fig6a_urx(benchmark, report):
    rows = run_once(
        benchmark,
        figure6_absolute_improvement,
        generator="URx",
        gammas=(50.0, 150.0, 200.0, 300.0),
        budget_fractions=BUDGETS,
    )
    report(
        format_rows(
            rows,
            columns=["gamma", "budget_fraction", "initial_variance", "absolute_improvement"],
            title="Figure 6a (URx): absolute improvement of GreedyMinVar over GreedyNaive",
        )
    )
    assert all(row["absolute_improvement"] >= -1e-9 for row in rows)
    # Higher initial uncertainty tends to give a bigger peak improvement.
    by_gamma = {}
    for row in rows:
        entry = by_gamma.setdefault(row["gamma"], {"initial": row["initial_variance"], "best": 0.0})
        entry["best"] = max(entry["best"], row["absolute_improvement"])
    most_uncertain = max(by_gamma.values(), key=lambda e: e["initial"])
    least_uncertain = min(by_gamma.values(), key=lambda e: e["initial"])
    assert most_uncertain["best"] >= least_uncertain["best"] - 1e-9


@pytest.mark.benchmark(group="figure-06")
def test_fig6b_lnx(benchmark, report):
    rows = run_once(
        benchmark,
        figure6_absolute_improvement,
        generator="LNx",
        gammas=(3.0, 4.0, 5.0),
        budget_fractions=BUDGETS,
    )
    report(
        format_rows(
            rows,
            columns=["gamma", "budget_fraction", "initial_variance", "absolute_improvement"],
            title="Figure 6b (LNx): absolute improvement of GreedyMinVar over GreedyNaive",
        )
    )
    assert all(row["absolute_improvement"] >= -1e-9 for row in rows)
