"""Tier-comparison harness: every dispatched kernel, every tier, both dtypes.

Measures the six hot-path kernels (``repro.kernels``) at several sizes under
the ``scalar`` / ``numpy`` / ``compiled`` tiers in float64 and float32,
through the *dispatch layer* (so the measured cost is what an engine
actually pays), and writes the full grid to ``BENCH_tiers.json``:

* per-kernel, per-dtype, per-tier best-of timings at each size;
* the compiled-over-numpy speedup at each size, and the *crossover point* —
  the smallest measured size at which compiled beats numpy (or null if it
  never does).  Crossovers are real on both ends: compiled wins where
  numpy's per-call overhead dominates, numpy can win back large convolution
  merges (``np.unique``'s sort beats qsort-on-pairs at scale), and both are
  recorded honestly rather than cherry-picked;
* the committed acceptance gate: the best compiled-over-numpy speedup across
  the float64 grid must clear ``COMPILED_SPEEDUP_FLOOR`` (enforced again by
  ``check_regressions.py`` on the artifact).

The harness skips (leaving the committed artifact in place) when no compiled
backend exists — the no-compiler CI leg exercises the numpy fallback path in
the test suite instead, and the equivalence of all tiers is asserted by
``tests/test_kernel_tiers.py``, not here.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import kernels

ARTIFACT_PATH = Path(__file__).parent / "BENCH_tiers.json"

#: Acceptance floor: compiled must beat numpy by at least this factor on at
#: least one (kernel, size) cell of the float64 grid.
COMPILED_SPEEDUP_FLOOR = 3.0

DTYPES = (np.float64, np.float32)
TIERS = ("scalar", "numpy", "compiled")

#: Best-of repeat counts per tier — the scalar tier is pure Python and only
#: needs enough repeats to dodge scheduler noise, not to amortize anything.
REPEATS = {"scalar": 3, "numpy": 30, "compiled": 30}


def _best_of(function, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _kernel_cases(rng: np.random.Generator, dtype) -> dict:
    """size -> zero-argument closure per kernel, for one dtype.

    In-place downdates reuse one working buffer across repeats; the values
    drift (each repeat subtracts another rank-one term) but stay well inside
    normal float range, so the arithmetic cost is unchanged.
    """
    cases: dict = {}

    sizes = (32, 128, 512)
    closures = {}
    for n in sizes:
        matrix = np.asarray(rng.standard_normal((n, n)), dtype=dtype)
        column = np.asarray(rng.standard_normal(n), dtype=dtype)
        closures[n] = lambda m=matrix, c=column: kernels.outer_downdate(m, c, 2.0)
    cases["outer_downdate"] = closures

    sizes = (8, 32, 128)
    closures = {}
    for m in sizes:
        bands = np.asarray(rng.standard_normal((m, 1000)), dtype=dtype)
        column = np.asarray(rng.standard_normal(m), dtype=dtype)
        closures[m] = lambda b=bands, c=column: kernels.banded_downdate(b, 100, c, 2.0)
    cases["banded_downdate"] = closures

    sizes = (10, 100, 1000)
    closures = {}
    contributions = np.asarray([0.0, 3.0, 7.0], dtype=dtype)
    cprobs = np.asarray([0.5, 0.3, 0.2], dtype=dtype)
    for n in sizes:
        values = np.arange(n, dtype=dtype)
        probs = np.full(n, 1.0 / n, dtype=dtype)
        closures[n] = lambda v=values, p=probs: kernels.convolve_support(
            v, p, contributions, cprobs
        )
    cases["convolve_support"] = closures

    sizes = (16, 256, 4096)
    closures = {}
    for n in sizes:
        shifts = np.asarray(rng.standard_normal(n), dtype=dtype)
        sds = np.asarray(np.abs(rng.standard_normal(n)) + 0.1, dtype=dtype)
        sds[::7] = 0.0  # keep the degenerate branch in the measured path
        closures[n] = lambda s=shifts, d=sds: kernels.normal_surprise_scores(
            s, d, 0.3
        )
    cases["normal_surprise_scores"] = closures

    sizes = (16, 256, 4096)
    closures = {}
    for n in sizes:
        matvec = np.asarray(rng.standard_normal(n), dtype=dtype)
        diagonal = np.asarray(np.abs(rng.standard_normal(n)) + 0.01, dtype=dtype)
        floor = np.full(n, 1e-12, dtype=dtype)
        closures[n] = lambda v=matvec, d=diagonal, f=floor: kernels.conditional_gains(
            v, d, f
        )
    cases["conditional_gains"] = closures

    sizes = (16, 256, 4096)
    closures = {}
    for n in sizes:
        weights = np.asarray(rng.standard_normal(n), dtype=dtype)
        matvec = np.asarray(rng.standard_normal(n), dtype=dtype)
        diagonal = np.asarray(np.abs(rng.standard_normal(n)), dtype=dtype)
        cleaned = np.zeros(n, dtype=bool)
        cleaned[::5] = True
        closures[n] = lambda w=weights, v=matvec, d=diagonal, c=cleaned: (
            kernels.marginal_gains(w, v, d, c)
        )
    cases["marginal_gains"] = closures

    return cases


@pytest.mark.benchmark(group="tiers")
def test_tier_crossover_grid(report):
    """Measure the full kernel x size x tier x dtype grid (BENCH_tiers.json)."""
    if not kernels.compiled_available():
        pytest.skip(
            "no compiled kernel backend available "
            f"({kernels.compiled_unavailable_reason()}); "
            "tier grid needs all three tiers"
        )

    grid: dict = {}
    for dtype in DTYPES:
        rng = np.random.default_rng(12345)
        cases = _kernel_cases(rng, dtype)
        for kernel_name, closures in cases.items():
            entry = grid.setdefault(
                kernel_name, {"sizes": sorted(closures), "timings": {}}
            )
            dtype_name = np.dtype(dtype).name
            timings = {tier: [] for tier in TIERS}
            for size in entry["sizes"]:
                closure = closures[size]
                for tier in TIERS:
                    with kernels.kernel_tier(tier):
                        closure()  # warm: compile/dispatch outside the timing
                        timings[tier].append(_best_of(closure, REPEATS[tier]))
            entry["timings"][dtype_name] = timings

    # Speedups and crossover points, float64 and float32 alike.
    best_speedup, best_kernel, best_size = 0.0, None, None
    for kernel_name, entry in grid.items():
        entry["compiled_over_numpy"] = {}
        entry["crossover"] = {}
        for dtype_name, timings in entry["timings"].items():
            ratios = [
                n / c for n, c in zip(timings["numpy"], timings["compiled"])
            ]
            entry["compiled_over_numpy"][dtype_name] = ratios
            wins = [
                size for size, ratio in zip(entry["sizes"], ratios) if ratio > 1.0
            ]
            entry["crossover"][dtype_name] = {
                "compiled_beats_numpy_at": min(wins) if wins else None,
                "numpy_wins_at": [
                    size
                    for size, ratio in zip(entry["sizes"], ratios)
                    if ratio <= 1.0
                ],
            }
            if dtype_name == "float64":
                for size, ratio in zip(entry["sizes"], ratios):
                    if ratio > best_speedup:
                        best_speedup, best_kernel, best_size = (
                            ratio,
                            kernel_name,
                            size,
                        )

    artifact = {
        "description": (
            "hot-path kernel timings (best-of seconds) per tier and dtype, "
            "with compiled-over-numpy crossover points"
        ),
        "environment": kernels.environment_metadata(),
        "compiled_backend": kernels.compiled_backend(),
        "tiers": list(TIERS),
        "dtypes": [np.dtype(d).name for d in DTYPES],
        "kernels": grid,
        "max_compiled_over_numpy_speedup": best_speedup,
        "max_speedup_kernel": best_kernel,
        "max_speedup_size": best_size,
        "compiled_speedup_floor": COMPILED_SPEEDUP_FLOOR,
    }
    # Artifact first, assert second — a regression must reach disk so the CI
    # gate fails on fresh numbers.
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    lines = [
        f"Kernel tier grid ({kernels.compiled_backend()} backend), float64 "
        "compiled-over-numpy per size:"
    ]
    for kernel_name, entry in grid.items():
        ratios = entry["compiled_over_numpy"]["float64"]
        pairs = ", ".join(
            f"{size}: {ratio:.2f}x" for size, ratio in zip(entry["sizes"], ratios)
        )
        cross = entry["crossover"]["float64"]["compiled_beats_numpy_at"]
        lines.append(f"  {kernel_name}: {pairs} (crossover at {cross})")
    lines.append(
        f"best speedup {best_speedup:.1f}x ({best_kernel} @ {best_size}, "
        f"floor {COMPILED_SPEEDUP_FLOOR}x); artifact -> {ARTIFACT_PATH.name}"
    )
    report("\n".join(lines))

    assert best_speedup >= COMPILED_SPEEDUP_FLOOR, (
        f"best compiled-over-numpy speedup {best_speedup:.2f}x is below the "
        f"{COMPILED_SPEEDUP_FLOOR}x acceptance floor ({best_kernel} @ {best_size})"
    )


@pytest.mark.benchmark(group="tiers")
def test_tier_results_agree_on_grid_inputs(report):
    """Spot-check the measured closures return the same results per tier."""
    rng = np.random.default_rng(99)
    n = 64
    matrix = rng.standard_normal((n, n))
    matrix = matrix @ matrix.T + n * np.eye(n)
    column = matrix[:, 5].copy()
    pivot = float(matrix[5, 5])

    results = {}
    for tier in TIERS:
        with kernels.kernel_tier(tier):
            if tier == "compiled" and not kernels.compiled_available():
                continue
            work = matrix.copy()
            kernels.outer_downdate(work, column, pivot)
            values, probs = kernels.convolve_support(
                np.arange(20.0),
                np.full(20, 0.05),
                np.array([0.0, 2.0, 5.0]),
                np.array([0.5, 0.25, 0.25]),
            )
            results[tier] = (work, values, probs)

    reference = results["numpy"]
    for tier, (work, values, probs) in results.items():
        np.testing.assert_allclose(work, reference[0], atol=1e-9)
        np.testing.assert_array_equal(values, reference[1])
        np.testing.assert_allclose(probs, reference[2], atol=1e-12)
    report(f"tier agreement verified for {sorted(results)}")
