"""Ablation benchmarks for the extension features (paper Section 6 future work).

* adaptive vs. static MaxPr cleaning — how much budget adaptivity saves when
  the goal is to reveal a counterargument;
* partial cleaning — how the achievable variance reduction degrades as the
  cleaning procedure becomes less reliable (residual factor rho);
* entropy vs. variance objectives — how often the two disagree on what to
  clean for a numeric fairness measure.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.claims.quality import Bias
from repro.claims.perturbations import window_sum_perturbations
from repro.core.adaptive import AdaptiveMaxPr, run_adaptive_trials
from repro.core.entropy import GreedyMinEntropy, expected_entropy
from repro.core.expected_variance import expected_variance_exact, linear_expected_variance
from repro.core.greedy import GreedyMaxPr, GreedyMinVar
from repro.core.partial import GreedyPartialMinVar, partial_linear_expected_variance
from repro.datasets.synthetic import generate_urx
from repro.datasets.adoptions import load_adoptions
from repro.experiments.reporting import format_rows
from repro.experiments.workloads import fairness_window_comparison_workload


@pytest.mark.benchmark(group="ablation-adaptive")
def test_ablation_adaptive_vs_static_maxpr(benchmark, report):
    """Adaptive MaxPr stops as soon as a counter is revealed; static does not.

    The Monte-Carlo side runs through :func:`run_adaptive_trials`: one rng
    draws all hidden worlds in a single stacked ``sample_worlds`` call and
    the trials share the policy's singleton surprise kernel.
    """
    database = generate_urx(n=24, seed=5)
    perturbations = window_sum_perturbations(
        n_objects=24, width=4, original_start=20, non_overlapping=True
    )
    bias = Bias(perturbations, database.current_values)
    tau = 10.0
    trials = 5
    budget = database.total_cost * 0.5

    def run_comparison():
        static_plan = GreedyMaxPr(bias, tau=tau).select(database, budget)
        batch = run_adaptive_trials(
            AdaptiveMaxPr(bias, tau=tau),
            database,
            budget,
            trials=trials,
            rng=np.random.default_rng(1),
        )
        return [
            {
                "trial": trial,
                "static_cost": static_plan.cost,
                "adaptive_cost": run.total_cost,
                "adaptive_succeeded": run.final_objective == 1.0,
            }
            for trial, run in enumerate(batch.runs)
        ]

    rows = run_once(benchmark, run_comparison)
    report(format_rows(rows, title="Ablation: adaptive vs static MaxPr cleaning cost"))
    # Adaptivity never spends more than the static plan.
    assert all(row["adaptive_cost"] <= row["static_cost"] + 1e-9 for row in rows)


@pytest.mark.benchmark(group="ablation-partial")
def test_ablation_partial_cleaning(benchmark, report):
    """Variance reduction achievable at 20% budget as cleaning reliability degrades."""
    database = load_adoptions()
    workload = fairness_window_comparison_workload(database, width=4, later_window_start=4)
    bias = workload.query_function
    weights = bias.weights(len(database))
    budget = database.total_cost * 0.2
    initial = linear_expected_variance(database, weights, [])

    def run_sweep():
        rows = []
        for rho in (0.0, 0.3, 0.5, 0.7, 0.9):
            plan = GreedyPartialMinVar(bias, rho=rho).select(database, budget)
            rows.append(
                {
                    "rho": rho,
                    "initial_variance": initial,
                    "variance_after": plan.objective_value,
                    "fraction_removed": 1.0 - plan.objective_value / initial,
                }
            )
        return rows

    rows = run_once(benchmark, run_sweep)
    report(format_rows(rows, title="Ablation: partial cleaning (residual factor rho), Adoptions"))
    removed = [row["fraction_removed"] for row in rows]
    # Less reliable cleaning removes less variance, monotonically.
    assert all(removed[i] >= removed[i + 1] - 1e-9 for i in range(len(removed) - 1))


@pytest.mark.benchmark(group="ablation-entropy")
def test_ablation_entropy_vs_variance_objective(benchmark, report):
    """Entropy- and variance-driven selection on a small fairness workload."""
    database = generate_urx(n=8, seed=11)
    perturbations = window_sum_perturbations(
        n_objects=8, width=2, original_start=6, non_overlapping=True
    )
    bias = Bias(perturbations, database.current_values)
    budget = database.total_cost * 0.4

    def run_comparison():
        minvar = GreedyMinVar(bias).select_indices(database, budget)
        minent = GreedyMinEntropy(bias).select_indices(database, budget)
        return {
            "minvar_selection": tuple(sorted(minvar)),
            "minentropy_selection": tuple(sorted(minent)),
            "minvar_ev": expected_variance_exact(database, bias, minvar),
            "minentropy_ev": expected_variance_exact(database, bias, minent),
            "minvar_eh": expected_entropy(database, bias, minvar),
            "minentropy_eh": expected_entropy(database, bias, minent),
        }

    results = run_once(benchmark, run_comparison)
    report(format_rows([results], title="Ablation: entropy vs variance objective (URx fairness)"))
    # Each objective's own greedy is at least as good on its own metric.
    assert results["minvar_ev"] <= results["minentropy_ev"] + 1e-9
    assert results["minentropy_eh"] <= results["minvar_eh"] + 1e-9
