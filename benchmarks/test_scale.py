"""Large-n scale smoke for the structured selection engine (PR 6).

Two regimes, both far beyond what the dense engine could touch:

* **Modular, n = 10^6.**  Array-backed database
  (``UncertainDatabase.from_normal_arrays`` — no per-object Python
  objects), linear recent-share claim, vectorized ``GreedyMinVar`` walk at
  a 1% budget, eager and stochastic (``epsilon = 0.1``).
* **Dependency-aware, n = 10^5.**  The registered ``scale_share_banded``
  workload — banded moving-average covariance held in band storage
  (O(n * bandwidth) memory; dense would be 80 GB) — driven through
  ``GreedyDep`` on the :class:`BandedConditionalGaussian` engine, eager
  and stochastic.

Timings, the engine's final effective bandwidth, its band-storage bytes,
and the process peak RSS go to ``BENCH_scale.json`` *before* the ceiling
asserts, so a breach still updates the artifact;
``benchmarks/check_regressions.py`` gates the committed numbers in CI.
Deselected from tier-1 by the ``scale`` marker (see pyproject) — run with
``pytest benchmarks/test_scale.py -m scale``.

Reference timings on the machine that introduced the engine: modular
n = 10^6 eager ~0.3 s (stochastic ~23 s — per-step feasibility scans over
the million-entry pool), dependency n = 10^5 ~0.25 s per variant, peak RSS
~420 MB, final bandwidth 38 from an initial 8.
"""

import json
import resource
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.greedy import GreedyDep, GreedyMinVar
from repro.kernels import environment_metadata
from repro.workloads.catalog import DEFAULT_N  # noqa: F401  (registers specs)
from repro.workloads.generators import make_normal_array_database, recent_share_claim
from repro.workloads.spec import build_workload

ARTIFACT_PATH = Path(__file__).parent / "BENCH_scale.json"

MODULAR_N = 10**6
DEPENDENCY_N = 10**5
STOCHASTIC_EPSILON = 0.1

# Measured ~0.3 s / ~23 s / ~0.25 s locally; ceilings are loose for slow CI
# hosts while still catching a return to the quadratic walk (hours) or to
# per-step band-storage doubling (also hours, and tens of GB).
MODULAR_CEILING_SECONDS = 30.0
MODULAR_STOCHASTIC_CEILING_SECONDS = 300.0
DEPENDENCY_CEILING_SECONDS = 30.0
DEPENDENCY_STOCHASTIC_CEILING_SECONDS = 60.0
# O(n * bandwidth)-class memory: 256 band rows at n = 10^5 is 205 MB, vs
# 80 GB dense.  The run lands at ~39 rows; the ceiling flags runaway fill-in.
BAND_STORAGE_CEILING_BYTES = 256 * DEPENDENCY_N * 8
# Peak RSS for the whole process (both regimes, numpy itself, the pytest
# host): measured ~420 MB; 8 TB would be the dense covariance at n = 10^6.
PEAK_RSS_CEILING_MB = 4096.0


def _peak_rss_mb() -> float:
    # ru_maxrss is KB on Linux; a process-wide high-water mark.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.mark.scale
@pytest.mark.benchmark(group="scale")
def test_scale_structured_engine(report):
    results = {}

    # --- modular, n = 10^6 ------------------------------------------------ #
    database = make_normal_array_database(MODULAR_N, seed=0, cost_model="unit")
    claim = recent_share_claim(MODULAR_N, period=MODULAR_N // 16, share=0.25)
    budget = 0.01 * database.total_cost

    start = time.perf_counter()
    eager = GreedyMinVar(claim).select_indices(database, budget)
    results["modular_seconds"] = time.perf_counter() - start
    results["modular_selected"] = len(eager)

    start = time.perf_counter()
    sampled = GreedyMinVar(
        claim,
        stochastic_epsilon=STOCHASTIC_EPSILON,
        stochastic_rng=np.random.default_rng(42),
    ).select_indices(database, budget)
    results["modular_stochastic_seconds"] = time.perf_counter() - start
    results["modular_stochastic_selected"] = len(sampled)

    # --- dependency-aware, n = 10^5 on the banded engine ------------------- #
    workload = build_workload("scale_share_banded", n=DEPENDENCY_N, seed=1)
    dep_database = workload.database
    dep_claim = workload.linear_function()
    dep_budget = 200.0  # unit costs: 200 conditioning steps

    solver = GreedyDep(dep_claim, workload.world_model, conditional=True)
    start = time.perf_counter()
    dep_selected = solver.select_indices(dep_database, dep_budget)
    results["dependency_seconds"] = time.perf_counter() - start
    results["dependency_steps"] = len(dep_selected)

    # Replay the selection on a fresh engine to read the storage the run
    # actually needed (the solver's engine is internal to the run).
    engine = workload.world_model.engine(
        dep_claim.weights(DEPENDENCY_N), conditional=True
    )
    for index in dep_selected:
        engine.condition_on(index)
    results["dependency_final_bandwidth"] = engine.bandwidth
    results["dependency_band_storage_bytes"] = engine.storage_nbytes

    start = time.perf_counter()
    dep_sampled = GreedyDep(
        dep_claim,
        workload.world_model,
        conditional=True,
        stochastic_epsilon=STOCHASTIC_EPSILON,
        stochastic_rng=np.random.default_rng(3),
    ).select_indices(dep_database, dep_budget)
    results["dependency_stochastic_seconds"] = time.perf_counter() - start
    results["dependency_stochastic_steps"] = len(dep_sampled)

    results["peak_rss_mb"] = _peak_rss_mb()

    artifact = {
        "description": (
            "Structured-engine scale smoke: n=1e6 modular (array-backed "
            "database, vectorized walk) and n=1e5 banded dependency "
            "(BandedConditionalGaussian), eager + stochastic greedy"
        ),
        "modular_n": MODULAR_N,
        "dependency_n": DEPENDENCY_N,
        "dependency_initial_bandwidth": 8,
        "stochastic_epsilon": STOCHASTIC_EPSILON,
        **{key: round(value, 4) if isinstance(value, float) else value
           for key, value in results.items()},
        "modular_ceiling_seconds": MODULAR_CEILING_SECONDS,
        "modular_stochastic_ceiling_seconds": MODULAR_STOCHASTIC_CEILING_SECONDS,
        "dependency_ceiling_seconds": DEPENDENCY_CEILING_SECONDS,
        "dependency_stochastic_ceiling_seconds": DEPENDENCY_STOCHASTIC_CEILING_SECONDS,
        "band_storage_ceiling_bytes": BAND_STORAGE_CEILING_BYTES,
        "peak_rss_ceiling_mb": PEAK_RSS_CEILING_MB,
    }
    artifact["environment"] = environment_metadata()
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")
    report(f"scale artifact -> {ARTIFACT_PATH.name}: " + json.dumps(artifact, indent=2))

    # Artifact is on disk — now enforce the ceilings.
    assert results["modular_selected"] > 0
    assert len(sampled) == len(eager)  # unit costs: same step count
    assert results["dependency_steps"] == 200
    assert results["modular_seconds"] <= MODULAR_CEILING_SECONDS
    assert results["modular_stochastic_seconds"] <= MODULAR_STOCHASTIC_CEILING_SECONDS
    assert results["dependency_seconds"] <= DEPENDENCY_CEILING_SECONDS
    assert (
        results["dependency_stochastic_seconds"]
        <= DEPENDENCY_STOCHASTIC_CEILING_SECONDS
    )
    assert results["dependency_band_storage_bytes"] <= BAND_STORAGE_CEILING_BYTES
    assert results["peak_rss_mb"] <= PEAK_RSS_CEILING_MB
