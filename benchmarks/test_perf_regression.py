"""Performance-regression smoke benchmark for the vectorized kernel layer.

Times the decomposed-EV GreedyMinVar selection at n = 2,000 (the Figure 10
budget-sweep scale) plus the individual kernels it is built from, asserts the
greedy completes under a generous wall-clock ceiling, and writes the timings
to ``BENCH_kernels.json`` next to this file so successive PRs can track the
perf trajectory.  The ceiling is deliberately loose (CI machines vary); the
JSON artifact is where regressions actually show up.

Reference timings on the machine that introduced the kernel layer (best of
10 runs): the seed (pure-Python dict) implementation ran the n = 2,000 greedy
in ~0.54 s; the vectorized kernels run it in ~0.065 s (≈8x).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import run_once
from repro.core.expected_variance import (
    DecomposedEVCalculator,
    expected_variance_monte_carlo,
    weighted_sum_pmf,
)
from repro.core.greedy import GreedyMinVar
from repro.core.problems import budget_from_fraction
from repro.experiments.efficiency import _build_scaled_workload
from repro.experiments.sweeps import run_budget_sweep

# Generous: the measured time is ~0.1 s; a 30x margin absorbs slow CI hosts
# while still catching a return to the pure-Python kernels (~0.44 s locally,
# proportionally slower on the same slow hosts only by the same factor).
GREEDY_CEILING_SECONDS = 3.0

# The sweep engine's contract (ISSUE 2 acceptance): a 6-budget GreedyMinVar
# sweep at n = 2,000 costs at most this multiple of ONE full-budget run.
SWEEP_RATIO_CEILING = 1.5
SWEEP_FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.5, 1.0)

ARTIFACT_PATH = Path(__file__).parent / "BENCH_kernels.json"
SWEEP_ARTIFACT_PATH = Path(__file__).parent / "BENCH_sweeps.json"


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="perf-regression")
def test_decomposed_greedy_n2000_smoke(benchmark, report):
    workload = _build_scaled_workload(2000, 100.0, 3)
    algorithm = GreedyMinVar(workload.query_function)

    start = time.perf_counter()
    selected = run_once(benchmark, algorithm.select_indices, workload.database, 500.0)
    greedy_seconds = time.perf_counter() - start
    assert selected, "the greedy should select something at budget 500"
    assert greedy_seconds < GREEDY_CEILING_SECONDS, (
        f"decomposed-EV greedy at n=2000 took {greedy_seconds:.2f}s "
        f"(ceiling {GREEDY_CEILING_SECONDS}s) — kernel-layer regression?"
    )

    # Micro-kernel timings for the trajectory artifact.
    database = workload.database
    measure = workload.query_function
    term = measure.terms[0]
    indices = sorted(term.referenced_indices)
    weights = term.claim.sparse_weights

    pmf_seconds = _time(lambda: weighted_sum_pmf(database, indices, weights))

    calculator = DecomposedEVCalculator(database, measure)
    ev_seconds = _time(lambda: DecomposedEVCalculator(database, measure).expected_variance(indices[:2]))

    mc_seconds = _time(
        lambda: expected_variance_monte_carlo(
            database,
            term.claim,
            indices[:1],
            np.random.default_rng(0),
            outer_samples=20,
            inner_samples=50,
        ),
        repeats=1,
    )

    artifact = {
        "n_objects": 2000,
        "budget": 500.0,
        "greedy_decomposed_ev_seconds": greedy_seconds,
        "weighted_sum_pmf_seconds": pmf_seconds,
        "decomposed_ev_eval_seconds": ev_seconds,
        "monte_carlo_ev_seconds": mc_seconds,
        "greedy_ceiling_seconds": GREEDY_CEILING_SECONDS,
        "selected_count": len(selected),
        "cache_sizes": calculator.cache_sizes(),
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "Perf regression smoke (n=2000 decomposed-EV greedy): "
        f"{greedy_seconds:.3f}s (ceiling {GREEDY_CEILING_SECONDS}s); "
        f"artifact -> {ARTIFACT_PATH.name}"
    )


@pytest.mark.benchmark(group="perf-regression")
def test_sweep_engine_single_trace_n2000(benchmark, report):
    """The trace-based sweep engine vs. per-budget re-runs (BENCH_sweeps.json).

    Times three ways of producing the same 6-budget GreedyMinVar sweep on the
    n = 2,000 URx uniqueness workload:

    * one full-budget greedy run (the lower bound any sweep can hope for);
    * the sweep engine's single-trace path (one trace + per-budget slices);
    * per-budget from-scratch re-runs with cold calculators (the seed's
      behaviour before the solver-trace refactor).

    Asserts the ISSUE-2 acceptance criterion — traced sweep <= 1.5x a single
    full-budget run — verifies the three agree row-for-row, and writes the
    timings to ``BENCH_sweeps.json`` for the perf trajectory.
    """
    workload = _build_scaled_workload(2000, 100.0, 3)
    function = workload.query_function
    database = workload.database
    full_budget = budget_from_fraction(database, 1.0)

    # Warm-up: take numpy / import costs out of the first timed run.
    GreedyMinVar(function).select_indices(database, budget_from_fraction(database, 0.02))

    start = time.perf_counter()
    GreedyMinVar(function).select_indices(database, full_budget)
    single_run_seconds = time.perf_counter() - start

    def traced_sweep():
        calculator = DecomposedEVCalculator(database, function)
        return run_budget_sweep(
            database,
            {"GreedyMinVar": GreedyMinVar(function, calculator=calculator)},
            calculator.expected_variance,
            budget_fractions=SWEEP_FRACTIONS,
            use_traces=True,
        )

    start = time.perf_counter()
    traced = run_once(benchmark, traced_sweep)
    traced_seconds = time.perf_counter() - start

    # Per-budget re-runs with a fresh solver and calculator per budget: the
    # O(budgets x greedy-run) shape the trace engine removes.
    start = time.perf_counter()
    cold_series = []
    cold_selections = []
    for fraction in SWEEP_FRACTIONS:
        calculator = DecomposedEVCalculator(database, function)
        solver = GreedyMinVar(function, calculator=calculator)
        selected = tuple(solver.select_indices(database, budget_from_fraction(database, fraction)))
        cold_selections.append(selected)
        cold_series.append(calculator.expected_variance(selected))
    per_budget_cold_seconds = time.perf_counter() - start

    assert traced.selections["GreedyMinVar"] == cold_selections, (
        "the traced sweep must reproduce per-budget re-runs exactly"
    )
    assert all(
        abs(a - b) <= 1e-12 for a, b in zip(traced.series["GreedyMinVar"], cold_series)
    ), "the traced sweep's objective series must match per-budget re-runs"
    ratio = traced_seconds / max(single_run_seconds, 1e-9)
    assert ratio <= SWEEP_RATIO_CEILING, (
        f"6-budget traced sweep took {traced_seconds:.3f}s = {ratio:.2f}x a single "
        f"full-budget run ({single_run_seconds:.3f}s); ceiling {SWEEP_RATIO_CEILING}x"
    )

    artifact = {
        "n_objects": 2000,
        "budget_fractions": list(SWEEP_FRACTIONS),
        "single_full_budget_run_seconds": single_run_seconds,
        "traced_sweep_seconds": traced_seconds,
        "per_budget_cold_rerun_seconds": per_budget_cold_seconds,
        "traced_over_single_ratio": ratio,
        "cold_over_traced_speedup": per_budget_cold_seconds / max(traced_seconds, 1e-9),
        "ratio_ceiling": SWEEP_RATIO_CEILING,
    }
    SWEEP_ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "Sweep engine (n=2000, 6 budgets): "
        f"single run {single_run_seconds:.3f}s, traced sweep {traced_seconds:.3f}s "
        f"({ratio:.2f}x, ceiling {SWEEP_RATIO_CEILING}x), "
        f"cold per-budget re-runs {per_budget_cold_seconds:.3f}s "
        f"({per_budget_cold_seconds / max(traced_seconds, 1e-9):.1f}x the traced sweep); "
        f"artifact -> {SWEEP_ARTIFACT_PATH.name}"
    )
