"""Performance-regression smoke benchmark for the vectorized kernel layer.

Times the decomposed-EV GreedyMinVar selection at n = 2,000 (the Figure 10
budget-sweep scale) plus the individual kernels it is built from, asserts the
greedy completes under a generous wall-clock ceiling, and writes the timings
to ``BENCH_kernels.json`` next to this file so successive PRs can track the
perf trajectory.  The ceiling is deliberately loose (CI machines vary); the
JSON artifact is where regressions actually show up.

Reference timings on the machine that introduced the kernel layer (best of
10 runs): the seed (pure-Python dict) implementation ran the n = 2,000 greedy
in ~0.54 s; the vectorized kernels run it in ~0.065 s (≈8x).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import run_once
from repro.claims.functions import LinearClaim
from repro.kernels import environment_metadata
from repro.core.adaptive import AdaptiveMinVar, ground_truth_oracle, run_adaptive_trials
from repro.core.expected_variance import (
    DecomposedEVCalculator,
    expected_variance_monte_carlo,
    weighted_sum_pmf,
)
from repro.core.greedy import GreedyDep, GreedyMinVar
from repro.core.problems import budget_from_fraction
from repro.experiments.efficiency import _build_scaled_workload
from repro.experiments.figures import figure11_dependency, figure11c_gamma_grid
from repro.experiments.sweeps import run_budget_sweep
from repro.uncertainty.correlation import GaussianWorldModel, decaying_covariance
from repro.uncertainty.database import UncertainDatabase
from repro.uncertainty.distributions import NormalSpec
from repro.uncertainty.objects import UncertainObject

# Generous: the measured time is ~0.1 s; a 30x margin absorbs slow CI hosts
# while still catching a return to the pure-Python kernels (~0.44 s locally,
# proportionally slower on the same slow hosts only by the same factor).
GREEDY_CEILING_SECONDS = 3.0

# The sweep engine's contract (ISSUE 2 acceptance): a 6-budget GreedyMinVar
# sweep at n = 2,000 costs at most this multiple of ONE full-budget run.
SWEEP_RATIO_CEILING = 1.5
SWEEP_FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.5, 1.0)

ARTIFACT_PATH = Path(__file__).parent / "BENCH_kernels.json"
SWEEP_ARTIFACT_PATH = Path(__file__).parent / "BENCH_sweeps.json"
ADAPTIVE_ARTIFACT_PATH = Path(__file__).parent / "BENCH_adaptive.json"
DEP_ARTIFACT_PATH = Path(__file__).parent / "BENCH_dep.json"

# The incremental conditioning engine's contract (ISSUE 3 acceptance): the
# n = 2,000 AdaptiveMinVar run (ground-truth oracle, 20% budget) must beat
# the pre-PR teardown loop by at least this factor.  The measured margin is
# far larger (hundreds of x); 5x is the floor that flags a regression.
ADAPTIVE_SPEEDUP_FLOOR = 5.0
ADAPTIVE_REPEATS = 3
ADAPTIVE_TRIALS = 5


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="perf-regression")
def test_decomposed_greedy_n2000_smoke(benchmark, report):
    workload = _build_scaled_workload(2000, 100.0, 3)
    algorithm = GreedyMinVar(workload.query_function)

    start = time.perf_counter()
    selected = run_once(benchmark, algorithm.select_indices, workload.database, 500.0)
    greedy_seconds = time.perf_counter() - start
    assert selected, "the greedy should select something at budget 500"

    # Micro-kernel timings for the trajectory artifact.
    database = workload.database
    measure = workload.query_function
    term = measure.terms[0]
    indices = sorted(term.referenced_indices)
    weights = term.claim.sparse_weights

    pmf_seconds = _time(lambda: weighted_sum_pmf(database, indices, weights))

    calculator = DecomposedEVCalculator(database, measure)
    ev_seconds = _time(lambda: DecomposedEVCalculator(database, measure).expected_variance(indices[:2]))

    mc_seconds = _time(
        lambda: expected_variance_monte_carlo(
            database,
            term.claim,
            indices[:1],
            np.random.default_rng(0),
            outer_samples=20,
            inner_samples=50,
        ),
        repeats=1,
    )

    artifact = {
        "n_objects": 2000,
        "budget": 500.0,
        "greedy_decomposed_ev_seconds": greedy_seconds,
        "weighted_sum_pmf_seconds": pmf_seconds,
        "decomposed_ev_eval_seconds": ev_seconds,
        "monte_carlo_ev_seconds": mc_seconds,
        "greedy_ceiling_seconds": GREEDY_CEILING_SECONDS,
        "selected_count": len(selected),
        "cache_sizes": calculator.cache_sizes(),
    }
    # Artifact first, ceiling assert second: a breached ceiling must reach
    # disk so the CI gate (check_regressions.py) can fail on the fresh
    # numbers rather than re-validating the last passing run's artifact.
    artifact["environment"] = environment_metadata()
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "Perf regression smoke (n=2000 decomposed-EV greedy): "
        f"{greedy_seconds:.3f}s (ceiling {GREEDY_CEILING_SECONDS}s); "
        f"artifact -> {ARTIFACT_PATH.name}"
    )
    assert greedy_seconds < GREEDY_CEILING_SECONDS, (
        f"decomposed-EV greedy at n=2000 took {greedy_seconds:.2f}s "
        f"(ceiling {GREEDY_CEILING_SECONDS}s) — kernel-layer regression?"
    )


@pytest.mark.benchmark(group="perf-regression")
def test_sweep_engine_single_trace_n2000(benchmark, report):
    """The trace-based sweep engine vs. per-budget re-runs (BENCH_sweeps.json).

    Times three ways of producing the same 6-budget GreedyMinVar sweep on the
    n = 2,000 URx uniqueness workload:

    * one full-budget greedy run (the lower bound any sweep can hope for);
    * the sweep engine's single-trace path (one trace + per-budget slices);
    * per-budget from-scratch re-runs with cold calculators (the seed's
      behaviour before the solver-trace refactor).

    Asserts the ISSUE-2 acceptance criterion — traced sweep <= 1.5x a single
    full-budget run — verifies the three agree row-for-row, and writes the
    timings to ``BENCH_sweeps.json`` for the perf trajectory.
    """
    workload = _build_scaled_workload(2000, 100.0, 3)
    function = workload.query_function
    database = workload.database
    full_budget = budget_from_fraction(database, 1.0)

    # Warm-up: take numpy / import costs out of the first timed run.
    GreedyMinVar(function).select_indices(database, budget_from_fraction(database, 0.02))

    # Best-of-3 on both sides of the asserted ratio: single wall-clock
    # samples on shared hosts are noisy enough to eat the contract's margin.
    single_run_seconds = _time(
        lambda: GreedyMinVar(function).select_indices(database, full_budget), repeats=3
    )

    def traced_sweep():
        calculator = DecomposedEVCalculator(database, function)
        return run_budget_sweep(
            database,
            {"GreedyMinVar": GreedyMinVar(function, calculator=calculator)},
            calculator.expected_variance,
            budget_fractions=SWEEP_FRACTIONS,
            use_traces=True,
        )

    start = time.perf_counter()
    traced = run_once(benchmark, traced_sweep)
    traced_seconds = time.perf_counter() - start
    traced_seconds = min(traced_seconds, _time(traced_sweep, repeats=2))

    # Per-budget re-runs with a fresh solver and calculator per budget: the
    # O(budgets x greedy-run) shape the trace engine removes.
    start = time.perf_counter()
    cold_series = []
    cold_selections = []
    for fraction in SWEEP_FRACTIONS:
        calculator = DecomposedEVCalculator(database, function)
        solver = GreedyMinVar(function, calculator=calculator)
        selected = tuple(solver.select_indices(database, budget_from_fraction(database, fraction)))
        cold_selections.append(selected)
        cold_series.append(calculator.expected_variance(selected))
    per_budget_cold_seconds = time.perf_counter() - start

    assert traced.selections["GreedyMinVar"] == cold_selections, (
        "the traced sweep must reproduce per-budget re-runs exactly"
    )
    assert all(
        abs(a - b) <= 1e-12 for a, b in zip(traced.series["GreedyMinVar"], cold_series)
    ), "the traced sweep's objective series must match per-budget re-runs"
    ratio = traced_seconds / max(single_run_seconds, 1e-9)

    artifact = {
        "n_objects": 2000,
        "budget_fractions": list(SWEEP_FRACTIONS),
        "single_full_budget_run_seconds": single_run_seconds,
        "traced_sweep_seconds": traced_seconds,
        "per_budget_cold_rerun_seconds": per_budget_cold_seconds,
        "traced_over_single_ratio": ratio,
        "cold_over_traced_speedup": per_budget_cold_seconds / max(traced_seconds, 1e-9),
        "ratio_ceiling": SWEEP_RATIO_CEILING,
    }
    artifact["environment"] = environment_metadata()
    SWEEP_ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "Sweep engine (n=2000, 6 budgets): "
        f"single run {single_run_seconds:.3f}s, traced sweep {traced_seconds:.3f}s "
        f"({ratio:.2f}x, ceiling {SWEEP_RATIO_CEILING}x), "
        f"cold per-budget re-runs {per_budget_cold_seconds:.3f}s "
        f"({per_budget_cold_seconds / max(traced_seconds, 1e-9):.1f}x the traced sweep); "
        f"artifact -> {SWEEP_ARTIFACT_PATH.name}"
    )
    # After the artifact write, so a breach reaches the CI regression gate.
    assert ratio <= SWEEP_RATIO_CEILING, (
        f"6-budget traced sweep took {traced_seconds:.3f}s = {ratio:.2f}x a single "
        f"full-budget run ({single_run_seconds:.3f}s); ceiling {SWEEP_RATIO_CEILING}x"
    )


@pytest.mark.benchmark(group="perf-regression")
def test_adaptive_incremental_n2000(benchmark, report):
    """Incremental conditioning engine vs. the teardown loop (BENCH_adaptive.json).

    Times the n = 2,000 AdaptiveMinVar run (URx uniqueness workload,
    ground-truth oracle, 20% budget) three ways:

    * the pre-PR teardown loop (``incremental=False``: a full ``cleaned()``
      database and a fresh calculator per step, O(n) per-candidate scalar
      gains) — measured once, it is the slow baseline;
    * the incremental conditioning engine (reveal overlays,
      condition-chained calculators, neighbour-only gain updates) —
    best-of-``ADAPTIVE_REPEATS`` cold runs;
    * the multi-trial driver (``run_adaptive_trials``) — per-trial amortized
      time when trials share the policy's per-database precomputation.

    Asserts the two paths produce identical runs and that the incremental
    engine clears the ≥5x acceptance floor, then writes the timings to
    ``BENCH_adaptive.json`` for the perf trajectory.
    """
    workload = _build_scaled_workload(2000, 100.0, 3)
    database = workload.database
    function = workload.query_function
    budget = database.total_cost * 0.2
    truth = database.sample_world(np.random.default_rng(7))
    oracle = ground_truth_oracle(truth)

    start = time.perf_counter()
    scratch_run = AdaptiveMinVar(function, incremental=False).run(database, budget, oracle)
    scratch_seconds = time.perf_counter() - start

    incremental_seconds = float("inf")
    incremental_run = None
    for repeat in range(ADAPTIVE_REPEATS):
        policy = AdaptiveMinVar(function)  # fresh: no warm per-database state
        if repeat == 0:
            start = time.perf_counter()
            incremental_run = run_once(benchmark, policy.run, database, budget, oracle)
            elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            incremental_run = policy.run(database, budget, oracle)
            elapsed = time.perf_counter() - start
        incremental_seconds = min(incremental_seconds, elapsed)

    assert incremental_run.cleaned_indices == scratch_run.cleaned_indices, (
        "incremental and teardown adaptive runs must clean the same objects"
    )
    assert abs(incremental_run.final_objective - scratch_run.final_objective) <= 1e-9

    speedup = scratch_seconds / max(incremental_seconds, 1e-9)

    # Multi-trial amortized time: one policy, stacked hidden worlds, shared
    # base calculator and memo tables across trials.
    trial_policy = AdaptiveMinVar(function)
    start = time.perf_counter()
    batch = run_adaptive_trials(
        trial_policy, database, budget, trials=ADAPTIVE_TRIALS, rng=np.random.default_rng(11)
    )
    trials_seconds = time.perf_counter() - start
    per_trial_seconds = trials_seconds / ADAPTIVE_TRIALS

    artifact = {
        "n_objects": 2000,
        "budget_fraction": 0.2,
        "steps": len(incremental_run),
        "teardown_scalar_seconds": scratch_seconds,
        "incremental_best_of": ADAPTIVE_REPEATS,
        "incremental_seconds": incremental_seconds,
        "speedup": speedup,
        "speedup_floor": ADAPTIVE_SPEEDUP_FLOOR,
        "multi_trial_trials": ADAPTIVE_TRIALS,
        "multi_trial_total_seconds": trials_seconds,
        "multi_trial_per_trial_seconds": per_trial_seconds,
        "multi_trial_mean_cost": batch.mean_cost,
    }
    artifact["environment"] = environment_metadata()
    ADAPTIVE_ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "Adaptive conditioning engine (n=2000, 20% budget): "
        f"teardown {scratch_seconds:.2f}s, incremental {incremental_seconds:.3f}s "
        f"({speedup:.0f}x, floor {ADAPTIVE_SPEEDUP_FLOOR:.0f}x), "
        f"multi-trial amortized {per_trial_seconds:.3f}s/trial over {ADAPTIVE_TRIALS} trials; "
        f"artifact -> {ADAPTIVE_ARTIFACT_PATH.name}"
    )
    # After the artifact write, so a breach reaches the CI regression gate.
    assert speedup >= ADAPTIVE_SPEEDUP_FLOOR, (
        f"incremental adaptive run took {incremental_seconds:.3f}s vs teardown "
        f"{scratch_seconds:.3f}s — only {speedup:.1f}x (floor {ADAPTIVE_SPEEDUP_FLOOR}x)"
    )


# The rank-one Gaussian conditioning engine's contract (ISSUE 4 acceptance):
# the n = 500 GreedyDep selection (conditional mode, 20% budget) must beat the
# per-candidate Schur-complement loop by at least this factor.  The measured
# margin is orders of magnitude larger; 5x is the floor that flags a
# regression (target per the issue: >= 50x).
DEP_SPEEDUP_FLOOR = 5.0
DEP_N = 500
DEP_BUDGET_FRACTION = 0.2
DEP_GAMMA = 0.7
DEP_REPEATS = 3
DEP_SCALED_N = 2000
DEP_SCALED_BUDGETS = (0.05, 0.1, 0.2)


def _dep_workload(n: int, seed: int = 5):
    """Dense-weight linear claim over correlated normal errors.

    Dense *positive* weights so every object carries signal (a sparse claim
    would let both paths coast through zero-gain ties) and so the lazy CELF
    comparison below sits in its exactness regime.
    """
    rng = np.random.default_rng(seed)
    objects = [
        UncertainObject(
            name=f"v{i}",
            current_value=float(rng.uniform(20.0, 80.0)),
            distribution=NormalSpec(
                mean=float(rng.uniform(20.0, 80.0)), std=float(rng.uniform(2.0, 9.0))
            ),
            cost=float(rng.uniform(1.0, 10.0)),
        )
        for i in range(n)
    ]
    database = UncertainDatabase(objects)
    claim = LinearClaim({i: float(rng.uniform(0.2, 1.5)) for i in range(n)})
    model = GaussianWorldModel(
        database.current_values,
        decaying_covariance(database.stds, DEP_GAMMA),
        validate=False,
    )
    return database, claim, model


@pytest.mark.benchmark(group="perf-regression")
def test_greedy_dep_conditioning_engine_n500(benchmark, report):
    """Rank-one conditioning engine vs the Schur-complement loop (BENCH_dep.json).

    Times the n = 500 GreedyDep selection (conditional mode, 20% budget)
    three ways:

    * the pre-PR scratch loop (``incremental=False``: one pseudo-inverse
      Schur complement per candidate per step) — measured once, it is the
      slow baseline and doubles as the eager benefit-evaluation count;
    * the incremental engine (one rank-one downdate + one vectorized gains
      pass per step) — best-of-``DEP_REPEATS`` cold runs;
    * the lazy (CELF) scratch path — same selections, far fewer Schur
      complements; its evaluation count is the lazy-vs-eager artifact line.

    Also times the paper-scale Figure 11 sweep (n = 2,000, marginal engine)
    and one conditional-mode n = 2,000 selection from the gamma-grid
    ablation, then writes everything to ``BENCH_dep.json``.
    """
    database, claim, model = _dep_workload(DEP_N)
    budget = database.total_cost * DEP_BUDGET_FRACTION

    scratch_solver = GreedyDep(claim, model, incremental=False)
    start = time.perf_counter()
    scratch_selected = scratch_solver.select_indices(database, budget)
    scratch_seconds = time.perf_counter() - start
    eager_evaluations = scratch_solver.last_benefit_evaluations

    incremental_seconds = float("inf")
    incremental_selected = None
    for repeat in range(DEP_REPEATS):
        solver = GreedyDep(claim, model)  # fresh engine per run
        start = time.perf_counter()
        if repeat == 0:
            incremental_selected = run_once(benchmark, solver.select_indices, database, budget)
        else:
            incremental_selected = solver.select_indices(database, budget)
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)

    assert incremental_selected == scratch_selected, (
        "incremental and scratch GreedyDep must select the same objects"
    )
    speedup = scratch_seconds / max(incremental_seconds, 1e-9)

    # Lazy CELF on the scratch path: exact here (nonnegative weights over the
    # nonnegative decaying covariance) with far fewer Schur complements.
    lazy_solver = GreedyDep(claim, model, incremental=False, lazy=True)
    start = time.perf_counter()
    lazy_selected = lazy_solver.select_indices(database, budget)
    lazy_seconds = time.perf_counter() - start
    assert lazy_selected == scratch_selected

    # Paper-scale Figure 11: the dependency sweep at n = 2,000 (ISSUE-4
    # acceptance) plus one conditional-mode selection for the gamma ablation.
    start = time.perf_counter()
    scaled = figure11_dependency(
        gamma=DEP_GAMMA, budget_fractions=DEP_SCALED_BUDGETS, n=DEP_SCALED_N
    )
    scaled_sweep_seconds = time.perf_counter() - start
    assert all(
        scaled.series["GreedyDep"][i] <= scaled.series["GreedyMinVar"][i] + 1e-9
        for i in range(len(DEP_SCALED_BUDGETS))
    )
    grid_rows = figure11c_gamma_grid(
        n=DEP_SCALED_N,
        gammas=(DEP_GAMMA,),
        budget_fraction=0.1,
        conditional_modes=(True,),
    )
    conditional_scaled_seconds = next(
        row["seconds"] for row in grid_rows if row["algorithm"] == "GreedyDep(conditional)"
    )

    artifact = {
        "n_objects": DEP_N,
        "budget_fraction": DEP_BUDGET_FRACTION,
        "gamma": DEP_GAMMA,
        "steps": len(scratch_selected),
        "scratch_schur_seconds": scratch_seconds,
        "incremental_best_of": DEP_REPEATS,
        "incremental_seconds": incremental_seconds,
        "speedup": speedup,
        "speedup_floor": DEP_SPEEDUP_FLOOR,
        "eager_benefit_evaluations": eager_evaluations,
        "lazy_benefit_evaluations": lazy_solver.last_benefit_evaluations,
        "lazy_scratch_seconds": lazy_seconds,
        "scaled_n_objects": DEP_SCALED_N,
        "scaled_budget_fractions": list(DEP_SCALED_BUDGETS),
        "scaled_sweep_seconds": scaled_sweep_seconds,
        "scaled_conditional_selection_seconds": conditional_scaled_seconds,
    }
    artifact["environment"] = environment_metadata()
    DEP_ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "GreedyDep conditioning engine (n=500, 20% budget): "
        f"scratch {scratch_seconds:.2f}s, incremental {incremental_seconds:.3f}s "
        f"({speedup:.0f}x, floor {DEP_SPEEDUP_FLOOR:.0f}x); "
        f"lazy CELF {lazy_solver.last_benefit_evaluations} vs eager "
        f"{eager_evaluations} benefit evaluations; "
        f"n={DEP_SCALED_N} sweep {scaled_sweep_seconds:.2f}s, "
        f"conditional selection {conditional_scaled_seconds:.2f}s; "
        f"artifact -> {DEP_ARTIFACT_PATH.name}"
    )
    # After the artifact write, so a breach reaches the CI regression gate.
    assert speedup >= DEP_SPEEDUP_FLOOR, (
        f"incremental GreedyDep took {incremental_seconds:.3f}s vs scratch "
        f"{scratch_seconds:.2f}s — only {speedup:.1f}x (floor {DEP_SPEEDUP_FLOOR}x)"
    )
    assert lazy_solver.last_benefit_evaluations < eager_evaluations
