"""Performance-regression smoke benchmark for the vectorized kernel layer.

Times the decomposed-EV GreedyMinVar selection at n = 2,000 (the Figure 10
budget-sweep scale) plus the individual kernels it is built from, asserts the
greedy completes under a generous wall-clock ceiling, and writes the timings
to ``BENCH_kernels.json`` next to this file so successive PRs can track the
perf trajectory.  The ceiling is deliberately loose (CI machines vary); the
JSON artifact is where regressions actually show up.

Reference timings on the machine that introduced the kernel layer (best of
10 runs): the seed (pure-Python dict) implementation ran the n = 2,000 greedy
in ~0.54 s; the vectorized kernels run it in ~0.065 s (≈8x).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import run_once
from repro.core.expected_variance import (
    DecomposedEVCalculator,
    expected_variance_monte_carlo,
    weighted_sum_pmf,
)
from repro.core.greedy import GreedyMinVar
from repro.experiments.efficiency import _build_scaled_workload

# Generous: the measured time is ~0.1 s; a 30x margin absorbs slow CI hosts
# while still catching a return to the pure-Python kernels (~0.44 s locally,
# proportionally slower on the same slow hosts only by the same factor).
GREEDY_CEILING_SECONDS = 3.0

ARTIFACT_PATH = Path(__file__).parent / "BENCH_kernels.json"


def _time(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="perf-regression")
def test_decomposed_greedy_n2000_smoke(benchmark, report):
    workload = _build_scaled_workload(2000, 100.0, 3)
    algorithm = GreedyMinVar(workload.query_function)

    start = time.perf_counter()
    selected = run_once(benchmark, algorithm.select_indices, workload.database, 500.0)
    greedy_seconds = time.perf_counter() - start
    assert selected, "the greedy should select something at budget 500"
    assert greedy_seconds < GREEDY_CEILING_SECONDS, (
        f"decomposed-EV greedy at n=2000 took {greedy_seconds:.2f}s "
        f"(ceiling {GREEDY_CEILING_SECONDS}s) — kernel-layer regression?"
    )

    # Micro-kernel timings for the trajectory artifact.
    database = workload.database
    measure = workload.query_function
    term = measure.terms[0]
    indices = sorted(term.referenced_indices)
    weights = term.claim.sparse_weights

    pmf_seconds = _time(lambda: weighted_sum_pmf(database, indices, weights))

    calculator = DecomposedEVCalculator(database, measure)
    ev_seconds = _time(lambda: DecomposedEVCalculator(database, measure).expected_variance(indices[:2]))

    mc_seconds = _time(
        lambda: expected_variance_monte_carlo(
            database,
            term.claim,
            indices[:1],
            np.random.default_rng(0),
            outer_samples=20,
            inner_samples=50,
        ),
        repeats=1,
    )

    artifact = {
        "n_objects": 2000,
        "budget": 500.0,
        "greedy_decomposed_ev_seconds": greedy_seconds,
        "weighted_sum_pmf_seconds": pmf_seconds,
        "decomposed_ev_eval_seconds": ev_seconds,
        "monte_carlo_ev_seconds": mc_seconds,
        "greedy_ceiling_seconds": GREEDY_CEILING_SECONDS,
        "selected_count": len(selected),
        "cache_sizes": calculator.cache_sizes(),
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    report(
        "Perf regression smoke (n=2000 decomposed-EV greedy): "
        f"{greedy_seconds:.3f}s (ceiling {GREEDY_CEILING_SECONDS}s); "
        f"artifact -> {ARTIFACT_PATH.name}"
    )
