"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the impact of individual design
decisions in this implementation:

* the Algorithm-1 single-item safeguard vs. plain density greedy;
* the knapsack solver used inside Optimum (exact DP vs. FPTAS vs. greedy);
* the discretization granularity used for the CDC normal error models;
* the claim-decomposed EV computation vs. brute-force enumeration.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.claims.functions import LinearClaim
from repro.core.expected_variance import (
    DecomposedEVCalculator,
    expected_variance_exact,
    linear_expected_variance,
)
from repro.core.knapsack import solve_knapsack_dp, solve_knapsack_fptas, solve_knapsack_greedy
from repro.core.modular import OptimumModularMinVar
from repro.datasets.cdc import load_cdc_firearms
from repro.datasets.synthetic import generate_urx
from repro.experiments.reporting import format_rows
from repro.experiments.workloads import fairness_window_comparison_workload, uniqueness_workload


@pytest.mark.benchmark(group="ablation-knapsack")
def test_ablation_knapsack_solvers(benchmark, report):
    """Exact DP vs FPTAS vs greedy on the Adoptions fairness weights."""
    rng = np.random.default_rng(0)
    values = rng.uniform(0, 2500, size=60)
    costs = rng.uniform(1, 100, size=60)
    budget = float(costs.sum() * 0.2)

    def run_all():
        return {
            "dp": solve_knapsack_dp(values, costs, budget).total_value,
            "fptas": solve_knapsack_fptas(values, costs, budget, epsilon=0.1).total_value,
            "greedy": solve_knapsack_greedy(values, costs, budget).total_value,
        }

    results = run_once(benchmark, run_all)
    report(
        format_rows(
            [{"solver": name, "value": value} for name, value in results.items()],
            title="Ablation: knapsack solver quality (higher is better)",
        )
    )
    assert results["fptas"] >= 0.9 * results["dp"] - 1e-9
    assert results["greedy"] >= 0.5 * results["dp"] - 1e-9


@pytest.mark.benchmark(group="ablation-safeguard")
def test_ablation_single_item_safeguard(benchmark, report):
    """The Algorithm-1 safeguard protects greedy from pathological densities."""
    values = np.array([0.1] + [10.0] * 3)
    costs = np.array([0.0001] + [2.0] * 3)

    def run_both():
        with_safeguard = solve_knapsack_greedy(values, costs, 2.0).total_value
        # Without the safeguard the density order would stop after the tiny item.
        by_density = sorted(range(4), key=lambda i: -(values[i] / costs[i]))
        spent, total = 0.0, 0.0
        for i in by_density:
            if spent + costs[i] <= 2.0:
                spent += costs[i]
                total += values[i]
        return {"with_safeguard": with_safeguard, "without_safeguard": total}

    results = run_once(benchmark, run_both)
    report(
        format_rows(
            [{"variant": k, "value": v} for k, v in results.items()],
            title="Ablation: Algorithm-1 single-item safeguard",
        )
    )
    assert results["with_safeguard"] >= results["without_safeguard"]


@pytest.mark.benchmark(group="ablation-discretization")
def test_ablation_discretization_granularity(benchmark, report):
    """How many support points the CDC normals need before EV stabilizes."""
    database = load_cdc_firearms()

    def run_granularities():
        rows = []
        for points in (2, 4, 6, 10):
            workload = uniqueness_workload(
                database, window_width=2, gamma=None or float(np.median(
                    [database.current_values[s:s+2].sum() for s in range(1, 16, 2)]
                )),
                discretize_points=points,
            )
            calculator = DecomposedEVCalculator(workload.database, workload.query_function)
            rows.append({"points": points, "initial_ev": calculator.expected_variance([])})
        return rows

    rows = run_once(benchmark, run_granularities)
    report(
        format_rows(rows, title="Ablation: discretization granularity vs initial EV (CDC-firearms)")
    )
    # The EV estimate should move less between 6 and 10 points than between 2 and 6.
    by_points = {row["points"]: row["initial_ev"] for row in rows}
    assert abs(by_points[10] - by_points[6]) <= abs(by_points[6] - by_points[2]) + 1e-6


@pytest.mark.benchmark(group="ablation-decomposition")
def test_ablation_decomposed_vs_exact_ev(benchmark, report):
    """The Theorem 3.8 decomposition agrees with brute force and is far cheaper."""
    import time

    database = generate_urx(n=12, seed=7)
    workload = uniqueness_workload(database, window_width=4, gamma=150.0)
    measure = workload.query_function
    db = workload.database

    def run_comparison():
        calculator = DecomposedEVCalculator(db, measure)
        start = time.perf_counter()
        decomposed = calculator.expected_variance([0, 5])
        decomposed_seconds = time.perf_counter() - start
        start = time.perf_counter()
        exact = expected_variance_exact(db, measure, [0, 5])
        exact_seconds = time.perf_counter() - start
        return {
            "decomposed": decomposed,
            "exact": exact,
            "decomposed_seconds": decomposed_seconds,
            "exact_seconds": exact_seconds,
        }

    results = run_once(benchmark, run_comparison)
    report(
        format_rows(
            [results],
            title="Ablation: decomposed (Thm 3.8) vs brute-force EV on a 12-value URx instance",
        )
    )
    assert results["decomposed"] == pytest.approx(results["exact"], abs=1e-9)


@pytest.mark.benchmark(group="ablation-optimum-method")
def test_ablation_optimum_methods_on_adoptions(benchmark, report):
    """Optimum's knapsack backend barely matters for solution quality on Figure 1."""
    from repro.datasets.adoptions import load_adoptions

    database = load_adoptions()
    workload = fairness_window_comparison_workload(database, width=4, later_window_start=4)
    bias = workload.query_function
    weights = bias.weights(len(database))
    budget = database.total_cost * 0.2

    def run_methods():
        rows = []
        for method in ("dp", "fptas", "greedy"):
            plan = OptimumModularMinVar(bias, method=method).select(database, budget)
            rows.append(
                {
                    "method": method,
                    "remaining_variance": linear_expected_variance(
                        database, weights, plan.selected
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, run_methods)
    report(format_rows(rows, title="Ablation: Optimum knapsack backend (Adoptions, 20% budget)"))
    by_method = {row["method"]: row["remaining_variance"] for row in rows}
    assert by_method["dp"] <= by_method["greedy"] + 1e-9
