"""Figure 12: competing objectives — ascertaining fairness vs. finding counters.

Adoptions data with a window-sum claim and non-overlapping window
perturbations; the current values are re-drawn from the error model so they
are *not* the distribution centers, which breaks the Theorem 3.9 alignment.
Optimum (MinVar) and GreedyMaxPr (MaxPr) are both scored on both objectives,
averaged over several current-value draws.

Expected shape: each algorithm clearly wins its own objective and does poorly
on the other; GreedyMaxPr's counter probability plateaus once further
cleaning would reduce it.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure12_competing_objectives
from repro.experiments.reporting import format_rows

BUDGETS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.benchmark(group="figure-12")
def test_fig12_competing_objectives(benchmark, report):
    result = run_once(
        benchmark,
        figure12_competing_objectives,
        budget_fractions=BUDGETS,
        repeats=10,
        seed=9,
    )
    report(
        format_rows(
            result.as_rows(),
            columns=["algorithm", "budget_fraction", "expected_variance", "counter_probability"],
            title="Figure 12: MinVar-optimal vs MaxPr-greedy on both objectives (Adoptions)",
        )
    )
    for i in range(len(BUDGETS)):
        # 12a: the MinVar strategy achieves (weakly) lower expected variance.
        assert (
            result.expected_variance["MinVar"][i]
            <= result.expected_variance["MaxPr"][i] + 1e-9
        )
        # 12b: the MaxPr strategy achieves (weakly) higher counter probability.
        assert (
            result.counter_probability["MaxPr"][i]
            >= result.counter_probability["MinVar"][i] - 1e-9
        )
    # The MaxPr curve flattens at generous budgets (it refuses to over-clean).
    assert result.counter_probability["MaxPr"][-1] == pytest.approx(
        result.counter_probability["MaxPr"][-2], rel=0.05, abs=1e-3
    )
