"""Figure 4: expected variance of claim uniqueness on LNx, sweeping Gamma.

Same workload as Figure 3, but value distributions come from the skewed
unimodal LNx generator, so the interesting Gamma range is much smaller
({3.0, 3.5, 4.0, 4.5, 5.0, 5.5}); the uncertainty peak sits around Gamma ≈ 4
and decays more slowly to the right of the peak because of the log-normal
skew.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure3to5_uniqueness_synthetic
from repro.experiments.reporting import format_series_table

BUDGETS = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)
GAMMAS = (3.0, 3.5, 4.0, 4.5, 5.0, 5.5)


@pytest.mark.benchmark(group="figure-04")
@pytest.mark.parametrize("gamma", GAMMAS)
def test_fig4_lnx(benchmark, report, gamma):
    result = run_once(
        benchmark,
        figure3to5_uniqueness_synthetic,
        "LNx",
        gamma=gamma,
        n=40,
        budget_fractions=BUDGETS,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title=f"Figure 4 (LNx, Gamma={gamma:g}): expected variance of uniqueness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9
