"""Figure 5: expected variance of claim uniqueness on SMx, sweeping Gamma.

Same workload as Figure 3 with the multimodal SMx generator (support values
from [1, 100], probabilities either very low or very high).  The uncertainty
peak again sits in the mid-range of achievable window sums.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure3to5_uniqueness_synthetic
from repro.experiments.reporting import format_series_table

BUDGETS = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)
GAMMAS = (50.0, 100.0, 150.0, 200.0, 250.0, 300.0)


@pytest.mark.benchmark(group="figure-05")
@pytest.mark.parametrize("gamma", GAMMAS)
def test_fig5_smx(benchmark, report, gamma):
    result = run_once(
        benchmark,
        figure3to5_uniqueness_synthetic,
        "SMx",
        gamma=gamma,
        n=40,
        budget_fractions=BUDGETS,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title=f"Figure 5 (SMx, Gamma={gamma:g}): expected variance of uniqueness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9
