"""Figure 7: expected variance of claim robustness (fragility) vs. budget.

Paper setup: "the number of injuries ... is as high as Gamma'".  CDC-firearms
uses two-year windows; the synthetic variant uses 100 URx values with 25
non-overlapping 4-value windows and Gamma' = 100.  Algorithms: GreedyNaive,
GreedyMinVar, Best.

Expected shape: GreedyMinVar ≈ Best ≤ GreedyNaive, as for uniqueness — the
algorithms make no assumption about which quality measure is used.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure7_robustness
from repro.experiments.reporting import format_series_table

BUDGETS = (0.1, 0.2, 0.4, 0.6, 0.8)


@pytest.mark.benchmark(group="figure-07")
def test_fig7a_cdc_firearms(benchmark, report):
    result = run_once(
        benchmark, figure7_robustness, "cdc_firearms", budget_fractions=BUDGETS
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 7a (CDC-firearms): expected variance of robustness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9


@pytest.mark.benchmark(group="figure-07")
def test_fig7b_urx(benchmark, report):
    result = run_once(
        benchmark,
        figure7_robustness,
        "URx",
        gamma=100.0,
        n=100,
        budget_fractions=BUDGETS,
        include_best=False,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 7b (URx, Gamma'=100): expected variance of robustness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9
