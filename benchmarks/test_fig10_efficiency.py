"""Figure 10: running time of GreedyMinVar.

Paper setup: URx scaled to 10,000 uncertain values with 2,500 non-overlapping
perturbations, sweeping the budget; then dataset sizes from 50k to 1M values
at a fixed budget.  The budget sweep runs at n = 2,000; the size sweep now
reaches n = 10,000 — the paper's actual budget-sweep scale, made CI-friendly
by the vectorized kernel layer (batched world enumeration, array pmf
convolution, cached per-term transform grids) — the shape to reproduce is
running time roughly linear in budget and super-linear in n.
"""

import pytest

from conftest import run_once
from repro.experiments.efficiency import time_budget_scaling, time_size_scaling
from repro.experiments.reporting import format_rows


@pytest.mark.benchmark(group="figure-10")
def test_fig10a_budget_scaling(benchmark, report):
    result = run_once(
        benchmark,
        time_budget_scaling,
        n=2000,
        budget_fractions=(0.01, 0.05, 0.1, 0.2, 0.3),
        gamma=100.0,
    )
    report(
        format_rows(
            result.as_rows(),
            title="Figure 10a: GreedyMinVar running time vs budget (n=2000)",
        )
    )
    assert all(s >= 0.0 for s in result.seconds)
    # More budget means more selections, which should not get cheaper.
    assert result.seconds[-1] >= result.seconds[0] * 0.5


@pytest.mark.benchmark(group="figure-10")
def test_fig10b_size_scaling(benchmark, report):
    result = run_once(
        benchmark,
        time_size_scaling,
        sizes=(500, 1000, 2000, 4000, 10000),
        budget=500.0,
        gamma=100.0,
    )
    report(
        format_rows(
            result.as_rows(),
            title="Figure 10b: GreedyMinVar running time vs dataset size (budget=500)",
        )
    )
    assert all(s >= 0.0 for s in result.seconds)
    # Bigger datasets take longer.
    assert result.seconds[-1] >= result.seconds[0]
