#!/usr/bin/env python
"""Fail loudly when any BENCH_*.json artifact exceeds its regression ceiling.

The perf-regression tests assert the same contracts, but a contract buried in
a pytest failure is easy to miss among unrelated errors — CI runs this script
as its own step (even when the test step failed), so a breached ceiling is a
named, red job step of its own.

Each known artifact declares which of its keys is the measured value and
which is the committed ceiling/floor it must respect.  Unknown ``BENCH_*``
files are reported but not enforced (add a rule when a new artifact lands);
a known artifact with missing keys fails loudly — a silently renamed key
must not disable its gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# artifact name -> list of (measured key, comparator, limit key)
RULES = {
    "BENCH_kernels.json": [
        ("greedy_decomposed_ev_seconds", "<=", "greedy_ceiling_seconds"),
    ],
    "BENCH_sweeps.json": [
        ("traced_over_single_ratio", "<=", "ratio_ceiling"),
    ],
    "BENCH_adaptive.json": [
        ("speedup", ">=", "speedup_floor"),
    ],
    "BENCH_dep.json": [
        ("speedup", ">=", "speedup_floor"),
        ("lazy_benefit_evaluations", "<=", "eager_benefit_evaluations"),
    ],
    "BENCH_scale.json": [
        ("modular_seconds", "<=", "modular_ceiling_seconds"),
        ("modular_stochastic_seconds", "<=", "modular_stochastic_ceiling_seconds"),
        ("dependency_seconds", "<=", "dependency_ceiling_seconds"),
        (
            "dependency_stochastic_seconds",
            "<=",
            "dependency_stochastic_ceiling_seconds",
        ),
        ("dependency_band_storage_bytes", "<=", "band_storage_ceiling_bytes"),
        ("peak_rss_mb", "<=", "peak_rss_ceiling_mb"),
    ],
}


def check(path: Path) -> list:
    failures = []
    rules = RULES.get(path.name)
    if rules is None:
        print(f"  ? {path.name}: no regression rule registered (not enforced)")
        return failures
    data = json.loads(path.read_text())
    for measured_key, comparator, limit_key in rules:
        if measured_key not in data or limit_key not in data:
            failures.append(
                f"{path.name}: expected keys {measured_key!r} and {limit_key!r} "
                f"are missing — the artifact schema changed without updating "
                f"{Path(__file__).name}"
            )
            continue
        measured = float(data[measured_key])
        limit = float(data[limit_key])
        ok = measured <= limit if comparator == "<=" else measured >= limit
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"  {'✓' if ok else '✗'} {path.name}: {measured_key}={measured:g} "
            f"{comparator} {limit_key}={limit:g} [{verdict}]"
        )
        if not ok:
            failures.append(
                f"{path.name}: {measured_key}={measured:g} violates "
                f"{measured_key} {comparator} {limit_key}={limit:g}"
            )
    return failures


def main() -> int:
    bench_dir = Path(__file__).parent
    artifacts = sorted(bench_dir.glob("BENCH_*.json"))
    if not artifacts:
        print("no BENCH_*.json artifacts found — nothing to check")
        return 1
    print(f"checking {len(artifacts)} benchmark artifact(s) in {bench_dir}:")
    failures = []
    for path in artifacts:
        failures.extend(check(path))
    if failures:
        print("\nPERF REGRESSION CEILING EXCEEDED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("all benchmark artifacts within their regression ceilings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
