#!/usr/bin/env python
"""Fail loudly when any BENCH_*.json artifact exceeds its regression ceiling.

The perf-regression tests assert the same contracts, but a contract buried in
a pytest failure is easy to miss among unrelated errors — CI runs this script
as its own step (even when the test step failed), so a breached ceiling is a
named, red job step of its own.

Each known artifact declares which of its keys is the measured value and
which is the committed ceiling/floor it must respect.  Unknown ``BENCH_*``
files are reported but not enforced (add a rule when a new artifact lands);
a known artifact with missing keys fails loudly — a silently renamed key
must not disable its gate.  Every artifact must also carry an
``environment`` block (CPU counts, numpy/scipy/numba versions, compiled
backend) so a regression diff can tell a real slowdown from a machine or
toolchain change.

``--write-baseline`` regenerates every ``BENCH_*.json`` in one command: it
runs the perf-regression, tier and scale benchmarks (including the
``scale``-marked ones the default pytest addopts deselect) and then
re-checks the fresh artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

# artifact name -> list of (measured key, comparator, limit key)
RULES = {
    "BENCH_kernels.json": [
        ("greedy_decomposed_ev_seconds", "<=", "greedy_ceiling_seconds"),
    ],
    "BENCH_sweeps.json": [
        ("traced_over_single_ratio", "<=", "ratio_ceiling"),
    ],
    "BENCH_adaptive.json": [
        ("speedup", ">=", "speedup_floor"),
    ],
    "BENCH_dep.json": [
        ("speedup", ">=", "speedup_floor"),
        ("lazy_benefit_evaluations", "<=", "eager_benefit_evaluations"),
    ],
    "BENCH_scale.json": [
        ("modular_seconds", "<=", "modular_ceiling_seconds"),
        ("modular_stochastic_seconds", "<=", "modular_stochastic_ceiling_seconds"),
        ("dependency_seconds", "<=", "dependency_ceiling_seconds"),
        (
            "dependency_stochastic_seconds",
            "<=",
            "dependency_stochastic_ceiling_seconds",
        ),
        ("dependency_band_storage_bytes", "<=", "band_storage_ceiling_bytes"),
        ("peak_rss_mb", "<=", "peak_rss_ceiling_mb"),
    ],
    "BENCH_tiers.json": [
        ("max_compiled_over_numpy_speedup", ">=", "compiled_speedup_floor"),
    ],
    "BENCH_stream.json": [
        ("speedup", ">=", "speedup_floor"),
    ],
    "BENCH_resilience.json": [
        ("checkpoint_overhead_ratio", "<=", "checkpoint_overhead_ceiling"),
        ("recovery_seconds", "<=", "recovery_ceiling_seconds"),
        ("resume_boundaries_verified", ">=", "resume_boundaries_required"),
        ("sigkill_resume_identical", ">=", "sigkill_resume_required"),
        ("chaos_plan_divergence", "<=", "chaos_divergence_ceiling"),
    ],
    "BENCH_service.json": [
        ("read_p99_ms", "<=", "read_p99_ceiling_ms"),
        ("ingest_p99_ms", "<=", "ingest_p99_ceiling_ms"),
        ("responses_verified", ">=", "responses_required"),
        ("plan_mismatches", "<=", "mismatch_ceiling"),
        ("signature_mismatches", "<=", "mismatch_ceiling"),
        ("version_violations", "<=", "mismatch_ceiling"),
        ("sigkill_acked_events_lost", "<=", "mismatch_ceiling"),
    ],
}

#: Environment facts every artifact must record (enforced for known
#: artifacts): enough to attribute a timing shift to hardware or toolchain.
REQUIRED_ENVIRONMENT_KEYS = ("python", "cpu_count", "numpy", "scipy")


def check(path: Path) -> list:
    failures = []
    rules = RULES.get(path.name)
    if rules is None:
        print(f"  ? {path.name}: no regression rule registered (not enforced)")
        return failures
    data = json.loads(path.read_text())
    environment = data.get("environment")
    if not isinstance(environment, dict) or any(
        key not in environment for key in REQUIRED_ENVIRONMENT_KEYS
    ):
        failures.append(
            f"{path.name}: missing or incomplete 'environment' metadata "
            f"(need at least {', '.join(REQUIRED_ENVIRONMENT_KEYS)}) — "
            "regenerate with --write-baseline"
        )
    for measured_key, comparator, limit_key in rules:
        if measured_key not in data or limit_key not in data:
            failures.append(
                f"{path.name}: expected keys {measured_key!r} and {limit_key!r} "
                f"are missing — the artifact schema changed without updating "
                f"{Path(__file__).name}"
            )
            continue
        measured = float(data[measured_key])
        limit = float(data[limit_key])
        ok = measured <= limit if comparator == "<=" else measured >= limit
        verdict = "ok" if ok else "REGRESSION"
        print(
            f"  {'✓' if ok else '✗'} {path.name}: {measured_key}={measured:g} "
            f"{comparator} {limit_key}={limit:g} [{verdict}]"
        )
        if not ok:
            failures.append(
                f"{path.name}: {measured_key}={measured:g} violates "
                f"{measured_key} {comparator} {limit_key}={limit:g}"
            )
    return failures


def write_baseline(bench_dir: Path) -> int:
    """Regenerate every BENCH_*.json by running the benchmark suites once.

    Three pytest invocations cover every artifact writer: the
    perf-regression suite (BENCH_kernels/sweeps/adaptive/dep), the tier grid
    (BENCH_tiers) and the ``scale``-marked benchmarks (BENCH_scale,
    BENCH_stream, BENCH_resilience and BENCH_service — selected explicitly
    against the default addopts).
    """
    repo_root = bench_dir.parent
    environment = dict(os.environ)
    source_dir = str(repo_root / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = (
        source_dir if not existing else source_dir + os.pathsep + existing
    )
    runs = [
        ["benchmarks/test_perf_regression.py", "benchmarks/test_tiers.py"],
        [
            "benchmarks/test_scale.py",
            "benchmarks/test_stream.py",
            "benchmarks/test_resilience.py",
            "benchmarks/test_service_harness.py",
            "-m",
            "scale",
        ],
    ]
    for selection in runs:
        command = [sys.executable, "-m", "pytest", "-q", *selection]
        print(f"$ {' '.join(command)}")
        completed = subprocess.run(command, cwd=repo_root, env=environment)
        if completed.returncode != 0:
            print(f"baseline run failed (exit {completed.returncode}); aborting")
            return completed.returncode
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate every BENCH_*.json (runs the benchmark suites), then check",
    )
    args = parser.parse_args()
    bench_dir = Path(__file__).parent
    if args.write_baseline:
        status = write_baseline(bench_dir)
        if status != 0:
            return status
    artifacts = sorted(bench_dir.glob("BENCH_*.json"))
    if not artifacts:
        print("no BENCH_*.json artifacts found — nothing to check")
        return 1
    print(f"checking {len(artifacts)} benchmark artifact(s) in {bench_dir}:")
    failures = []
    for path in artifacts:
        failures.extend(check(path))
    if failures:
        print("\nPERF REGRESSION CEILING EXCEEDED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("all benchmark artifacts within their regression ceilings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
