"""Section 4.3 in-text case study: budget needed to reveal a counterargument.

The claim asserts that the most recent four-year (resp. four-value) window is
the lowest in recent history.  Current and true values are drawn from the
error model so that the current data shows no counterexample while the truth
contains one; GreedyMaxPr and GreedyNaive then clean values in their own
orders until the revealed data exposes the counter.

The paper reports GreedyMaxPr needing ~7-8% of the budget against 21-74% for
GreedyNaive; with reconstructed data the exact gap is scenario-dependent, so
the benchmark only asserts that GreedyMaxPr needs no more budget than
GreedyNaive.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import counters_case_study
from repro.experiments.reporting import format_rows


@pytest.mark.benchmark(group="case-study-counters")
def test_counters_cdc_firearms(benchmark, report):
    result = run_once(benchmark, counters_case_study, "cdc_firearms", seed=2)
    report(
        format_rows(
            result.as_rows(),
            title="Case study (CDC-firearms): budget used before a counter is revealed",
        )
    )
    assert result.counter_exists_in_truth
    maxpr = result.budget_fraction_used["GreedyMaxPr"]
    naive = result.budget_fraction_used["GreedyNaive"]
    if maxpr is not None and naive is not None:
        assert maxpr <= naive + 1e-9


@pytest.mark.benchmark(group="case-study-counters")
def test_counters_urx(benchmark, report):
    result = run_once(benchmark, counters_case_study, "URx", seed=6, n=40)
    report(
        format_rows(
            result.as_rows(),
            title="Case study (URx): budget used before a counter is revealed",
        )
    )
    rows = result.as_rows()
    assert {row["algorithm"] for row in rows} == {"GreedyMaxPr", "GreedyNaive"}
