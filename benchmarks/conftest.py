"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or in-text case
studies) via :mod:`repro.experiments.figures`, times the run with
pytest-benchmark (a single round — these are experiment harnesses, not
micro-benchmarks), and prints the same rows/series the paper plots so the
output can be compared against the figures by eye.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def report(capsys):
    """Print a block of experiment output even under pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
