"""Figure 3: expected variance of claim uniqueness on URx, sweeping Gamma.

Paper setup: 40 uncertain URx values, claim sums a 4-value window and asserts
it is "as low as Gamma" for Gamma in {50, 100, 150, 200, 250, 300}; 10
non-overlapping perturbation windows.  Algorithms: GreedyNaive, GreedyMinVar,
Best.

Expected shape: GreedyMinVar ≈ Best ≤ GreedyNaive; the initial (budget-0)
uncertainty peaks for mid-range Gamma (~200 for values drawn from [1, 100]).
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure3to5_uniqueness_synthetic
from repro.experiments.reporting import format_series_table

BUDGETS = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)
GAMMAS = (50.0, 100.0, 150.0, 200.0, 250.0, 300.0)


@pytest.mark.benchmark(group="figure-03")
@pytest.mark.parametrize("gamma", GAMMAS)
def test_fig3_urx(benchmark, report, gamma):
    result = run_once(
        benchmark,
        figure3to5_uniqueness_synthetic,
        "URx",
        gamma=gamma,
        n=40,
        budget_fractions=BUDGETS,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title=f"Figure 3 (URx, Gamma={gamma:g}): expected variance of uniqueness",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9
    # With the full budget the remaining uncertainty is essentially gone.
    assert result.series["GreedyMinVar"][-1] <= result.series["GreedyMinVar"][0] + 1e-9
