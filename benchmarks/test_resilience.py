"""Resilience benchmark: checkpoint overhead, crash recovery, chaos replay (PR 9).

The same 200-event journal over the n = 2,000 uniqueness workload as
``BENCH_stream.json``, replayed three ways:

1. **warm, in-memory** — the PR-8 baseline the durability layer must not
   slow down;
2. **durable** — every event journaled to a WAL-mode SQLite
   :class:`~repro.store.PlanStore` before it is applied, plan + cursor +
   periodic checkpoint committed after.  The wall-clock ratio of (2) over
   (1) is the *checkpoint overhead* and must stay ≤ 10%;
3. **durable under chaos** — the same replay with deterministic injected
   faults (kernel backend failures, transient store locks, NaN event
   corruption); its plans must be byte-identical to the clean run's.

Crash recovery is verified *exhaustively*: for every one of the 201 event
boundaries the planner is restored from the last durable checkpoint, the
journaled events past it are re-applied, and the state fingerprint must
equal the uninterrupted run's at that boundary.  A sample of boundaries
additionally runs the full :func:`~repro.store.resume_replay` continuation
(byte-identical plan signatures), and one boundary is exercised by a
genuine SIGKILL: a ``repro.cli store run`` subprocess hard-killed with
``os._exit(137)`` mid-stream, then resumed in-process.

Everything goes to ``BENCH_resilience.json`` *before* the asserts;
``benchmarks/check_regressions.py`` enforces the committed ceilings in CI.
Deselected from tier-1 by the ``scale`` marker — run with
``pytest benchmarks/test_resilience.py -m scale``.

Reference numbers on the machine that introduced the store: warm replay
~1.5 s, durable replay within a few percent of it, full recovery from a
mid-journal kill ~1 s.
"""

import json
import os
import shutil
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.datasets.synthetic import generate_urx
from repro.experiments.workloads import uniqueness_workload
from repro.kernels import environment_metadata
from repro.resilience import FaultPlan, degradation_scope, fault_scope
from repro.store import PlanStore, durable_replay, resume_replay
from repro.streaming import (
    StreamingPlanner,
    plan_signature,
    replay_journal,
    synthesize_journal,
)
from repro.streaming.events import event_from_dict
from repro.streaming.replay import ReplayResult, apply_and_record

ARTIFACT_PATH = Path(__file__).parent / "BENCH_resilience.json"

# The BENCH_stream configuration, verbatim — overhead is measured against
# the same workload PR 8's speedup floor is pinned to.
N = 2000
EVENTS = 200
SEED = 3
JOURNAL_SEED = 7
GAMMA = 100.0
BUDGET_FRACTION = 0.15
CHECKPOINT_EVERY = 10

#: Durable replay may cost at most 10% over the in-memory warm replay.
OVERHEAD_CEILING = 1.10
#: Full recovery (checkpoint restore + finishing the journal) wall-clock cap.
RECOVERY_CEILING_SECONDS = 60.0
#: Boundaries whose full resume_replay continuation is also verified.
CONTINUATION_BOUNDARIES = (0, 67, 133, 199)
#: The boundary the genuine SIGKILL subprocess dies at.
SIGKILL_BOUNDARY = 100

CHAOS_PLAN = FaultPlan(
    seed=11, rates={"kernel": 0.05, "store": 0.1, "event": 0.05}
)


def _planner_factory() -> StreamingPlanner:
    workload = uniqueness_workload(
        generate_urx(N, SEED), window_width=4, gamma=GAMMA
    )
    return StreamingPlanner(
        workload.database,
        workload.query_function,
        budget=BUDGET_FRACTION * workload.database.total_cost,
    )


def _timed_replay(journal, store=None, stream_id="s"):
    """(wall seconds of the event loop, result) — planner build untimed."""
    planner = _planner_factory()
    if store is not None:
        planner.bind_store(
            store,
            stream_id=stream_id,
            checkpoint_every=CHECKPOINT_EVERY,
            metadata=dict(journal.metadata),
        )
    result = ReplayResult(metadata=dict(journal.metadata))
    started = time.perf_counter()
    for event in journal:
        apply_and_record(planner, event, result, False, time.perf_counter)
    return time.perf_counter() - started, result


def _boundary_fingerprints(journal):
    """State fingerprints of an uninterrupted run at every event boundary."""
    planner = _planner_factory()
    fingerprints = [planner.state_fingerprint()]
    for event in journal:
        planner.apply(event)
        fingerprints.append(planner.state_fingerprint())
    return fingerprints


def _restore_to_boundary(store, base, boundary, stream_id="s"):
    """Rebuild the planner state a crash at ``boundary`` events leaves behind."""
    seq, state = store.latest_checkpoint(stream_id, max_seq=boundary)
    planner = StreamingPlanner.restore(
        state, base.database, base.function, model=base._model
    )
    for event_seq, payload in store.events(stream_id, start_seq=seq):
        if event_seq >= boundary:
            break
        planner.apply(event_from_dict(payload))
    return planner


def _truncate_store_to_boundary(source, target, boundary):
    """Copy ``source`` and delete everything a kill at ``boundary`` predates."""
    shutil.copy(source, target)
    with sqlite3.connect(target) as raw:
        raw.execute("DELETE FROM events WHERE seq >= ?", (boundary,))
        raw.execute("DELETE FROM plans WHERE seq >= ?", (boundary,))
        raw.execute("DELETE FROM checkpoints WHERE seq > ?", (boundary,))
        if boundary == 0:
            raw.execute("DELETE FROM cursors")
        else:
            raw.execute("UPDATE cursors SET applied_seq = ?", (boundary - 1,))
        raw.commit()


def _sigkill_subprocess_resume(tmp_path):
    """Hard-kill a CLI `store run` mid-journal, resume in-process, compare.

    The CLI synthesizes its journal from ``--seed`` (not JOURNAL_SEED), so
    the uninterrupted reference signature is recomputed for that stream.
    """
    store_path = tmp_path / "sigkill.db"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "store",
        "run",
        "--store",
        str(store_path),
        "--n",
        str(N),
        "--events",
        str(EVENTS),
        "--seed",
        str(SEED),
        "--gamma",
        str(GAMMA),
        "--budget-fraction",
        str(BUDGET_FRACTION),
        "--checkpoint-every",
        str(CHECKPOINT_EVERY),
        "--kill-after-events",
        str(SIGKILL_BOUNDARY),
    ]
    killed = subprocess.run(command, env=env, capture_output=True, timeout=600)
    assert killed.returncode == 137, killed.stderr.decode()

    cli_journal = synthesize_journal(
        _planner_factory().database, EVENTS, seed=SEED
    )
    reference = plan_signature(
        replay_journal(cli_journal, _planner_factory, compare_cold=False)
    )
    started = time.perf_counter()
    with PlanStore(store_path) as store:
        resumed = resume_replay(
            store, _planner_factory, cli_journal, stream_id="stream"
        )
    recovery_seconds = time.perf_counter() - started
    identical = plan_signature(resumed) == reference
    return identical, recovery_seconds, resumed.metadata["resumed_at"]


@pytest.mark.scale
@pytest.mark.benchmark(group="resilience")
def test_checkpoint_overhead_and_crash_recovery(tmp_path, report):
    base = _planner_factory()
    journal = synthesize_journal(base.database, EVENTS, seed=JOURNAL_SEED)
    fingerprints = _boundary_fingerprints(journal)

    # Best-of-2 for both legs: the ratio gate should compare steady-state
    # replay costs, not whichever run a CI neighbor perturbed.
    warm_seconds = min(_timed_replay(journal)[0] for _ in range(2))
    durable_walls = []
    for attempt in range(2):
        with PlanStore(tmp_path / f"durable-{attempt}.db") as store:
            wall, result = _timed_replay(journal, store=store)
            durable_walls.append(wall)
    durable_seconds = min(durable_walls)
    overhead_ratio = durable_seconds / warm_seconds
    clean_signature = plan_signature(result)

    # The last durable store is the crash corpus: verify recovery at every
    # event boundary against the uninterrupted fingerprints.
    durable_path = tmp_path / "durable-1.db"
    boundaries_verified = 0
    with PlanStore(durable_path) as store:
        assert store.verify()["corrupt"] == []
        for boundary in range(EVENTS + 1):
            restored = _restore_to_boundary(store, base, boundary)
            if restored.state_fingerprint() == fingerprints[boundary]:
                boundaries_verified += 1

    # A sample of boundaries also runs the full resume continuation on a
    # store truncated to exactly the state a kill at that boundary leaves.
    continuations_identical = 0
    for boundary in CONTINUATION_BOUNDARIES:
        truncated = tmp_path / f"killed-{boundary}.db"
        _truncate_store_to_boundary(durable_path, truncated, boundary)
        with PlanStore(truncated) as store:
            resumed = resume_replay(store, _planner_factory, journal, stream_id="s")
            if plan_signature(resumed) == clean_signature:
                continuations_identical += 1

    # Chaos leg: the same durable replay under deterministic faults must
    # produce byte-identical plans — only the counters may differ.
    with fault_scope(CHAOS_PLAN), degradation_scope() as counters:
        with PlanStore(tmp_path / "chaos.db") as store:
            _, chaos_result = _timed_replay(journal, store=store)
    chaos_divergence = int(plan_signature(chaos_result) != clean_signature)

    sigkill_identical, recovery_seconds, resumed_at = _sigkill_subprocess_resume(
        tmp_path
    )

    artifact = {
        "description": (
            "Durability and fault injection over the BENCH_stream journal "
            "(200 events, n=2000 uniqueness): durable-replay overhead vs "
            "the in-memory warm baseline, exhaustive kill-and-resume "
            "verification at all 201 event boundaries, a genuine SIGKILL "
            "subprocess recovery, and a chaos replay under injected faults"
        ),
        "n": N,
        "events": EVENTS,
        "journal_seed": JOURNAL_SEED,
        "checkpoint_every": CHECKPOINT_EVERY,
        "warm_seconds": round(warm_seconds, 4),
        "durable_seconds": round(durable_seconds, 4),
        "checkpoint_overhead_ratio": round(overhead_ratio, 4),
        "checkpoint_overhead_ceiling": OVERHEAD_CEILING,
        "resume_boundaries_verified": boundaries_verified,
        "resume_boundaries_required": EVENTS + 1,
        "continuation_boundaries": list(CONTINUATION_BOUNDARIES),
        "continuations_identical": continuations_identical,
        "sigkill_boundary": SIGKILL_BOUNDARY,
        "sigkill_resumed_at": resumed_at,
        "sigkill_resume_identical": int(sigkill_identical),
        "sigkill_resume_required": 1,
        "recovery_seconds": round(recovery_seconds, 4),
        "recovery_ceiling_seconds": RECOVERY_CEILING_SECONDS,
        "chaos_fault_plan": json.loads(CHAOS_PLAN.to_json()),
        "chaos_plan_divergence": chaos_divergence,
        "chaos_divergence_ceiling": 0,
        "chaos_degradations": counters.snapshot(),
        "environment": environment_metadata(),
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")
    report(
        f"resilience artifact -> {ARTIFACT_PATH.name}: "
        + json.dumps(artifact, indent=2)
    )

    # Artifact is on disk — now enforce the acceptance criteria.
    assert boundaries_verified == EVENTS + 1, (
        f"{EVENTS + 1 - boundaries_verified} event boundaries failed to "
        "restore to the uninterrupted state fingerprint"
    )
    assert continuations_identical == len(CONTINUATION_BOUNDARIES)
    assert sigkill_identical, "SIGKILL resume diverged from the clean run"
    assert chaos_divergence == 0, "injected faults changed the plans"
    assert counters.total() > 0, "the chaos plan injected nothing"
    assert overhead_ratio <= OVERHEAD_CEILING, (
        f"durable replay costs {overhead_ratio:.3f}x the warm baseline, "
        f"above the {OVERHEAD_CEILING}x ceiling"
    )
    assert recovery_seconds <= RECOVERY_CEILING_SECONDS
