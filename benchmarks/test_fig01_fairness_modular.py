"""Figure 1: variance in claim fairness after cleaning vs. budget.

Paper setup: the Giuliani adoption claim over Adoptions (18 perturbations,
sensibility decay 1.5), a back-to-back four-year comparison over
CDC-firearms (10 perturbations), and the cross-cause share claim over
CDC-causes (16 perturbations).  Algorithms: Random, GreedyNaiveCostBlind,
GreedyNaive, GreedyMinVar and the exact knapsack Optimum.

Expected shape: Random ≫ GreedyNaiveCostBlind ≥ GreedyNaive ≫ GreedyMinVar ≈
Optimum, with the gap largest at small budgets.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure1_fairness
from repro.experiments.reporting import format_series_table

BUDGETS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.8)


@pytest.mark.benchmark(group="figure-01")
def test_fig1_adoptions(benchmark, report):
    result = run_once(
        benchmark,
        figure1_fairness,
        "adoptions",
        budget_fractions=BUDGETS,
        include_random=True,
        random_repeats=25,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 1a/1b (Adoptions): variance in fairness after cleaning",
        )
    )
    for minvar, optimum in zip(result.series["GreedyMinVar"], result.series["Optimum"]):
        assert minvar <= optimum * 1.2 + 1e-9
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9


@pytest.mark.benchmark(group="figure-01")
def test_fig1_cdc_firearms(benchmark, report):
    result = run_once(
        benchmark,
        figure1_fairness,
        "cdc_firearms",
        budget_fractions=BUDGETS,
        include_random=False,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 1c (CDC-firearms): variance in fairness after cleaning",
        )
    )
    for minvar, naive in zip(result.series["GreedyMinVar"], result.series["GreedyNaive"]):
        assert minvar <= naive + 1e-9


@pytest.mark.benchmark(group="figure-01")
def test_fig1_cdc_causes(benchmark, report):
    result = run_once(
        benchmark,
        figure1_fairness,
        "cdc_causes",
        budget_fractions=BUDGETS,
        include_random=False,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 1d (CDC-causes): variance in fairness after cleaning",
        )
    )
    for minvar, cost_blind in zip(
        result.series["GreedyMinVar"], result.series["GreedyNaiveCostBlind"]
    ):
        assert minvar <= cost_blind + 1e-9
