"""Service benchmark: the 16x200 concurrent-history harness + SIGKILL resume.

Boots a real ``repro serve`` subprocess, then:

1. **Concurrent history** — 16 client threads x 200 ops each, interleaving
   keyed ingests and plan reads over 4 sessions (one of them
   storage-backed).  Every response is recorded, then
   :func:`repro.service.verify_history` replays each session's durable
   journal serially and recomputes what every response should have said:
   byte-equal plans at the reported version, recomputed signatures,
   contiguous ack versions, per-thread monotone reads.  Latency
   percentiles (read p50/p99, ingest→fresh-plan p50/p99) come from the
   same observations.
2. **SIGKILL + resume** — a second server takes a run of acked keyed
   ingests, is hard-killed (no shutdown hooks), and is rebooted with
   ``--resume``.  Every acked event must still be in the journal, the
   resumed version must equal the ack count, and re-sending each key must
   replay the *original* ack signature — an acked event is never lost.

Everything goes to ``BENCH_service.json`` *before* the asserts;
``benchmarks/check_regressions.py`` enforces the committed ceilings in CI.
Deselected from tier-1 by the ``scale`` marker — run with
``pytest benchmarks/test_service_harness.py -m scale``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import environment_metadata
from repro.service import (
    ServiceClient,
    kill_server,
    run_concurrent_history,
    start_server_subprocess,
    verify_history,
)
from repro.service.sessions import SessionConfig
from repro.store import PlanStore

ARTIFACT_PATH = Path(__file__).parent / "BENCH_service.json"

THREADS = 16
OPS_PER_THREAD = 200
HISTORY_SEED = 13

#: The four session workloads the harness threads round-robin over.
SESSION_CONFIGS = (
    {"kind": "linear_normal", "n": 64, "seed": 1, "budget": 9.0},
    {"kind": "linear_normal", "n": 96, "seed": 2, "budget": 12.0},
    {
        "kind": "linear_normal",
        "n": 64,
        "seed": 3,
        "budget": 9.0,
        "storage_backed": True,
        "page_size": 32,
    },
    {"kind": "urx_uniqueness", "n": 48, "seed": 4, "budget": 12.0},
)

#: Latency ceilings (generous: CI runners share cores with 16 client
#: threads and a GIL-bound threaded server).
READ_P99_CEILING_MS = 2_000.0
INGEST_P99_CEILING_MS = 10_000.0

#: Acked keyed ingests the SIGKILL leg commits before the hard kill.
SIGKILL_EVENTS = 25


def _percentiles(values):
    if not values:
        return 0.0, 0.0
    array = np.asarray(values, dtype=float)
    return float(np.percentile(array, 50)), float(np.percentile(array, 99))


def _run_history(root: Path):
    process, url = start_server_subprocess(root)
    try:
        client = ServiceClient(url)
        sessions = []
        for config in SESSION_CONFIGS:
            created = client.create_session(**config)
            sessions.append((created["session"], SessionConfig.from_payload(config)))
        client.close()
        history = run_concurrent_history(
            url,
            sessions,
            threads=THREADS,
            ops_per_thread=OPS_PER_THREAD,
            seed=HISTORY_SEED,
        )
    finally:
        kill_server(process)
    return history


def _run_sigkill_leg(root: Path):
    """Acked events survive a SIGKILL: journaled, resumed, replayable."""
    process, url = start_server_subprocess(root)
    client = ServiceClient(url)
    session = client.create_session(kind="linear_normal", n=48, seed=9, budget=8.0)
    session_id = session["session"]
    rng = np.random.default_rng(99)
    acks = {}
    for i in range(SIGKILL_EVENTS):
        event = {
            "kind": "reveal",
            "index": int(rng.integers(0, 48)),
            "value": float(rng.normal(10.0, 2.0)),
        }
        key = f"sk-{i}"
        acks[key] = (event, client.ingest(session_id, event, idempotency_key=key))
    client.close()
    kill_server(process)

    lost = 0
    # Every acked seq must be durable in the journal the kill left behind.
    store = PlanStore(root / f"{session_id}.sqlite")
    try:
        durable_seqs = {seq for seq, _ in store.events(session_id)}
    finally:
        store.close()
    for key, (_event, ack) in acks.items():
        if int(ack["seq"]) not in durable_seqs:
            lost += 1

    # Resume and replay every key: the original ack must come back verbatim.
    process, url = start_server_subprocess(root, resume=True)
    try:
        client = ServiceClient(url)
        info = client.info(session_id)
        if int(info["version"]) != SIGKILL_EVENTS:
            lost += abs(SIGKILL_EVENTS - int(info["version"]))
        for key, (event, ack) in acks.items():
            replay = client.ingest(session_id, dict(event), idempotency_key=key)
            if not replay.get("idempotent_replay"):
                lost += 1
            elif replay["signature"] != ack["signature"]:
                lost += 1
        # The resumed session keeps serving: one fresh event lands on top.
        fresh = client.ingest(
            session_id,
            {"kind": "reveal", "index": 0, "value": 11.0},
            idempotency_key="post-resume",
        )
        post_resume_version = int(fresh["version"])
        client.close()
    finally:
        kill_server(process)
    return lost, post_resume_version


@pytest.mark.scale
def test_service_concurrent_history_and_sigkill(tmp_path):
    history = _run_history(tmp_path / "history")
    observations = history["observations"]
    counters = verify_history(tmp_path / "history", observations)

    read_latencies = [
        o["latency_ms"] for o in observations if o["type"] == "read"
    ]
    ingest_latencies = [
        o["latency_ms"]
        for o in observations
        if o["type"] == "ingest" and not o["idempotent_replay"]
    ]
    read_p50, read_p99 = _percentiles(read_latencies)
    ingest_p50, ingest_p99 = _percentiles(ingest_latencies)

    lost, post_resume_version = _run_sigkill_leg(tmp_path / "sigkill")

    payload = {
        "threads": THREADS,
        "ops_per_thread": OPS_PER_THREAD,
        "sessions": len(SESSION_CONFIGS),
        "history_errors": len(history["errors"]),
        "reads": len(read_latencies),
        "ingests": len(ingest_latencies),
        "read_p50_ms": read_p50,
        "read_p99_ms": read_p99,
        "read_p99_ceiling_ms": READ_P99_CEILING_MS,
        "ingest_p50_ms": ingest_p50,
        "ingest_p99_ms": ingest_p99,
        "ingest_p99_ceiling_ms": INGEST_P99_CEILING_MS,
        "responses_verified": counters["responses_verified"],
        "responses_required": THREADS * OPS_PER_THREAD,
        "plan_mismatches": len(counters["plan_mismatches"]),
        "signature_mismatches": len(counters["signature_mismatches"]),
        "version_violations": len(counters["version_violations"]),
        "mismatch_ceiling": 0,
        "sigkill_acked_events": SIGKILL_EVENTS,
        "sigkill_acked_events_lost": lost,
        "sigkill_post_resume_version": post_resume_version,
        "environment": environment_metadata(),
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {ARTIFACT_PATH}")
    print(json.dumps({k: v for k, v in payload.items() if k != "environment"}, indent=2))

    assert history["errors"] == []
    assert counters["plan_mismatches"] == []
    assert counters["signature_mismatches"] == []
    assert counters["version_violations"] == []
    assert counters["responses_verified"] == THREADS * OPS_PER_THREAD
    assert lost == 0
    assert post_resume_version == SIGKILL_EVENTS + 1
    assert read_p99 <= READ_P99_CEILING_MS
    assert ingest_p99 <= INGEST_P99_CEILING_MS
