"""Figure 9: effectiveness in action — estimated duplicity on URx (Gamma = 100).

Same protocol as Figure 8 on the synthetic URx dataset with 40 values and the
"window sum as low as 100" claim.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure9_in_action_synthetic
from repro.experiments.reporting import format_rows

BUDGETS = (0.1, 0.2, 0.4, 0.6, 1.0)


@pytest.mark.benchmark(group="figure-09")
def test_fig9_in_action_urx(benchmark, report):
    result = run_once(
        benchmark,
        figure9_in_action_synthetic,
        "URx",
        gamma=100.0,
        n=40,
        budget_fractions=BUDGETS,
    )
    report(
        format_rows(
            result.as_rows(),
            columns=["algorithm", "budget_fraction", "estimated_mean", "estimated_std", "true_value"],
            title="Figure 9 (URx, Gamma=100): estimated duplicity mean / stddev vs budget",
        )
    )
    for algorithm in result.means:
        assert result.means[algorithm][-1] == pytest.approx(result.true_value)
        assert result.stds[algorithm][-1] == pytest.approx(0.0, abs=1e-9)
    mid = len(BUDGETS) // 2
    assert result.stds["GreedyMinVar"][mid] <= result.stds["GreedyNaive"][mid] + 1e-9
