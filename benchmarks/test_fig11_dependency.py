"""Figure 11: handling dependency (correlated errors) on CDC-firearms.

Covariance ``gamma**|i-j| * sigma_i * sigma_j`` is injected into the
CDC-firearms error model.  GreedyNaiveCostBlind / GreedyNaive / GreedyMinVar /
Optimum are unaware of the dependency; OPT (exhaustive) and GreedyDep know the
covariance matrix.  The reported objective is the variance in claim fairness
contributed by the objects left unclean, under the true covariance.

Expected shape (11a, gamma = 0.7): Optimum / GreedyMinVar track OPT closely
and beat the naive baselines; GreedyDep matches OPT almost everywhere.
Expected shape (11b, budget = 30%): GreedyMinVar stays optimal for weak
dependency and falls behind OPT as gamma grows, while GreedyDep keeps up.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure11_dependency, figure11b_dependency_strength
from repro.experiments.reporting import format_rows, format_series_table

BUDGETS = (0.1, 0.2, 0.3, 0.5, 0.7)


@pytest.mark.benchmark(group="figure-11")
def test_fig11a_varying_budget(benchmark, report):
    result = run_once(
        benchmark, figure11_dependency, gamma=0.7, budget_fractions=BUDGETS, include_opt=True
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 11a (CDC-firearms, gamma=0.7): variance in fairness after cleaning",
        )
    )
    for i in range(len(BUDGETS)):
        opt = result.series["OPT"][i]
        assert result.series["GreedyMinVar"][i] >= opt - 1e-6
        assert result.series["GreedyDep"][i] >= opt - 1e-6
        assert result.series["GreedyMinVar"][i] <= result.series["GreedyNaive"][i] + 1e-9
        # Knowing the dependency never hurts by much: GreedyDep stays within a
        # small factor of OPT.
        assert result.series["GreedyDep"][i] <= opt * 1.5 + 1e-6


@pytest.mark.benchmark(group="figure-11")
def test_fig11b_varying_dependency(benchmark, report):
    rows = run_once(
        benchmark,
        figure11b_dependency_strength,
        gammas=(0.0, 0.2, 0.4, 0.6, 0.8, 0.9),
        budget_fraction=0.3,
        include_opt=True,
    )
    report(
        format_rows(
            rows,
            columns=["gamma", "algorithm", "variance_after_cleaning"],
            title="Figure 11b (CDC-firearms, budget=30%): effect of dependency strength",
        )
    )
    by_gamma = {}
    for row in rows:
        by_gamma.setdefault(row["gamma"], {})[row["algorithm"]] = row["variance_after_cleaning"]
    # Independent case: the dependency-unaware greedy is already optimal.
    assert by_gamma[0.0]["GreedyMinVar"] == pytest.approx(by_gamma[0.0]["OPT"], rel=1e-6)
    # OPT lower-bounds everything at every dependency level.
    for gamma_rows in by_gamma.values():
        assert gamma_rows["OPT"] <= min(gamma_rows.values()) + 1e-6
