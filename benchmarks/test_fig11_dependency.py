"""Figure 11: handling dependency (correlated errors) on CDC-firearms.

Covariance ``gamma**|i-j| * sigma_i * sigma_j`` is injected into the
CDC-firearms error model.  GreedyNaiveCostBlind / GreedyNaive / GreedyMinVar /
Optimum are unaware of the dependency; OPT (exhaustive) and GreedyDep know the
covariance matrix.  The reported objective is the variance in claim fairness
contributed by the objects left unclean, under the true covariance.

Expected shape (11a, gamma = 0.7): Optimum / GreedyMinVar track OPT closely
and beat the naive baselines; GreedyDep matches OPT almost everywhere.
Expected shape (11b, budget = 30%): GreedyMinVar stays optimal for weak
dependency and falls behind OPT as gamma grows, while GreedyDep keeps up.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import (
    figure11_dependency,
    figure11b_dependency_strength,
    figure11c_gamma_grid,
)
from repro.experiments.reporting import format_rows, format_series_table

BUDGETS = (0.1, 0.2, 0.3, 0.5, 0.7)
SCALED_N = 2000
SCALED_BUDGETS = (0.05, 0.1, 0.2)


@pytest.mark.benchmark(group="figure-11")
def test_fig11a_varying_budget(benchmark, report):
    result = run_once(
        benchmark, figure11_dependency, gamma=0.7, budget_fractions=BUDGETS, include_opt=True
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title="Figure 11a (CDC-firearms, gamma=0.7): variance in fairness after cleaning",
        )
    )
    for i in range(len(BUDGETS)):
        opt = result.series["OPT"][i]
        assert result.series["GreedyMinVar"][i] >= opt - 1e-6
        assert result.series["GreedyDep"][i] >= opt - 1e-6
        assert result.series["GreedyMinVar"][i] <= result.series["GreedyNaive"][i] + 1e-9
        # Knowing the dependency never hurts by much: GreedyDep stays within a
        # small factor of OPT.
        assert result.series["GreedyDep"][i] <= opt * 1.5 + 1e-6


@pytest.mark.benchmark(group="figure-11")
def test_fig11b_varying_dependency(benchmark, report):
    rows = run_once(
        benchmark,
        figure11b_dependency_strength,
        gammas=(0.0, 0.2, 0.4, 0.6, 0.8, 0.9),
        budget_fraction=0.3,
        include_opt=True,
    )
    report(
        format_rows(
            rows,
            columns=["gamma", "algorithm", "variance_after_cleaning"],
            title="Figure 11b (CDC-firearms, budget=30%): effect of dependency strength",
        )
    )
    by_gamma = {}
    for row in rows:
        by_gamma.setdefault(row["gamma"], {})[row["algorithm"]] = row["variance_after_cleaning"]
    # Independent case: the dependency-unaware greedy is already optimal.
    assert by_gamma[0.0]["GreedyMinVar"] == pytest.approx(by_gamma[0.0]["OPT"], rel=1e-6)
    # OPT lower-bounds everything at every dependency level.
    for gamma_rows in by_gamma.values():
        assert gamma_rows["OPT"] <= min(gamma_rows.values()) + 1e-6


@pytest.mark.benchmark(group="figure-11")
def test_fig11_scaled_sweep(benchmark, report):
    """The dependency sweep at paper scale (n=2,000), ISSUE-4 acceptance.

    Only feasible since the rank-one conditioning engine: the scratch
    GreedyDep recomputed a Schur complement per candidate per step.  The
    scaled workload keeps every window-shift perturbation with a slow
    sensibility decay, so the bias weights cover the whole timeline.
    """
    result = run_once(
        benchmark,
        figure11_dependency,
        gamma=0.7,
        budget_fractions=SCALED_BUDGETS,
        n=SCALED_N,
    )
    report(
        format_series_table(
            result.budget_fractions,
            result.series,
            title=f"Figure 11a at n={SCALED_N} (gamma=0.7): variance in fairness after cleaning",
        )
    )
    dep = result.series["GreedyDep"]
    minvar = result.series["GreedyMinVar"]
    naive = result.series["GreedyNaive"]
    for i in range(len(SCALED_BUDGETS)):
        # Knowing the covariance never hurts: the dependency-aware greedy
        # keeps (at least) the dependency-blind greedy's quality, which in
        # turn beats the objective-blind baseline.
        assert dep[i] <= minvar[i] + 1e-9
        assert minvar[i] <= naive[i] + 1e-9
    # More budget never increases the remaining variance.
    assert all(dep[i + 1] <= dep[i] + 1e-12 for i in range(len(dep) - 1))


@pytest.mark.benchmark(group="figure-11")
def test_fig11c_gamma_grid_scaled(benchmark, report):
    """Gamma-grid ablation at n=2,000 (marginal mode; conditional mode is
    exercised with timings in the perf-regression benchmark)."""
    gammas = (0.0, 0.5, 0.9)
    rows = run_once(
        benchmark,
        figure11c_gamma_grid,
        n=SCALED_N,
        gammas=gammas,
        budget_fraction=0.1,
        conditional_modes=(False,),
    )
    report(
        format_rows(
            rows,
            columns=["gamma", "algorithm", "variance_after_cleaning", "seconds"],
            title=f"Figure 11c (n={SCALED_N}): dependency-strength ablation",
        )
    )
    by_gamma = {}
    for row in rows:
        by_gamma.setdefault(row["gamma"], {})[row["algorithm"]] = row["variance_after_cleaning"]
    # Independent errors: dependency-awareness changes nothing.
    assert by_gamma[0.0]["GreedyDep(marginal)"] == pytest.approx(
        by_gamma[0.0]["GreedyMinVar"], rel=1e-9
    )
    # Correlated errors: the dependency-aware greedy directly optimizes the
    # reported objective, so it is at least as good at every gamma.
    for gamma in gammas:
        assert by_gamma[gamma]["GreedyDep(marginal)"] <= by_gamma[gamma]["GreedyMinVar"] + 1e-9
