"""Figure 8: effectiveness in action — estimated duplicity on CDC-causes.

A hidden ground-truth world is drawn from the CDC error model; at each budget
each algorithm's cleaning selections are revealed against it, and the
fact-checker's post-cleaning estimate of the claim's duplicity (mean and
standard deviation) is recorded.

Expected shape: GreedyMinVar / Best converge toward the true duplicity with a
smaller standard deviation, and do so at lower budgets than GreedyNaive.
"""

import pytest

from conftest import run_once
from repro.experiments.figures import figure8_in_action_cdc
from repro.experiments.reporting import format_rows

BUDGETS = (0.1, 0.2, 0.4, 0.6, 1.0)


@pytest.mark.benchmark(group="figure-08")
def test_fig8_in_action_cdc_causes(benchmark, report):
    result = run_once(benchmark, figure8_in_action_cdc, budget_fractions=BUDGETS)
    report(
        format_rows(
            result.as_rows(),
            columns=["algorithm", "budget_fraction", "estimated_mean", "estimated_std", "true_value"],
            title="Figure 8 (CDC-causes): estimated duplicity mean / stddev vs budget",
        )
    )
    # With the whole dataset cleaned every algorithm recovers the truth exactly.
    for algorithm in result.means:
        assert result.means[algorithm][-1] == pytest.approx(result.true_value)
        assert result.stds[algorithm][-1] == pytest.approx(0.0, abs=1e-9)
    # At intermediate budgets the objective-aware strategy is at least as sharp.
    mid = len(BUDGETS) // 2
    assert result.stds["GreedyMinVar"][mid] <= result.stds["GreedyNaive"][mid] + 1e-9
