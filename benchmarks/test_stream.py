"""Streaming re-planning benchmark: warm-start vs per-event cold solves (PR 8).

One 200-event mixed journal (reveals, cost changes, inserts, removes) over
the n = 2,000 uniqueness workload, replayed through the
:class:`~repro.streaming.planner.StreamingPlanner`.  After every event the
incremental re-solve is timed against a from-scratch solve on the identical
post-event database, and the two plans are compared — the replay asserts
they stay *identical* (the warm path is an optimization, never an
approximation).  A second warm-only replay of the same journal checks that
replays are byte-identical (the determinism half of the acceptance
criteria).

Totals, the speedup, divergence metrics and the environment go to
``BENCH_stream.json`` *before* the asserts, so a breach still updates the
artifact; ``benchmarks/check_regressions.py`` enforces the committed
speedup floor in CI.  Deselected from tier-1 by the ``scale`` marker — run
with ``pytest benchmarks/test_stream.py -m scale``.

Reference numbers on the machine that introduced the engine: warm total
~1.5 s for the 200 events (vs ~24 s of cold solves, ~15x), every event's
warm plan equal to its cold plan.
"""

import json
import time
from pathlib import Path

import pytest

from repro.datasets.synthetic import generate_urx
from repro.experiments.workloads import uniqueness_workload
from repro.kernels import environment_metadata
from repro.streaming import (
    StreamingPlanner,
    plan_signature,
    replay_journal,
    synthesize_journal,
)

ARTIFACT_PATH = Path(__file__).parent / "BENCH_stream.json"

N = 2000
EVENTS = 200
SEED = 3
JOURNAL_SEED = 7
GAMMA = 100.0
BUDGET_FRACTION = 0.15

# Measured ~15x locally; the acceptance floor is 10x and check_regressions
# enforces the committed number.
SPEEDUP_FLOOR = 10.0


def _planner_factory() -> StreamingPlanner:
    workload = uniqueness_workload(
        generate_urx(N, SEED), window_width=4, gamma=GAMMA
    )
    return StreamingPlanner(
        workload.database,
        workload.query_function,
        budget=BUDGET_FRACTION * workload.database.total_cost,
    )


@pytest.mark.scale
@pytest.mark.benchmark(group="stream")
def test_stream_replay_speedup_and_determinism(report):
    base = _planner_factory().database
    journal = synthesize_journal(base, EVENTS, seed=JOURNAL_SEED)

    started = time.perf_counter()
    first = replay_journal(journal, _planner_factory, compare_cold=True)
    first_wall = time.perf_counter() - started

    # Second replay, warm-only: the byte-identity check needs the plans,
    # not another 200 cold solves.
    second = replay_journal(journal, _planner_factory, compare_cold=False)
    signatures_match = plan_signature(first) == plan_signature(second)

    divergence = first.divergence_summary()
    kinds = {}
    for event in journal:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1

    artifact = {
        "description": (
            "Streaming replay: 200-event mixed journal over the n=2000 "
            "uniqueness workload; warm-started incremental re-solves vs "
            "per-event cold solves, plans compared at every step"
        ),
        "n": N,
        "events": EVENTS,
        "budget_fraction": BUDGET_FRACTION,
        "journal_seed": JOURNAL_SEED,
        "event_kinds": kinds,
        "warm_seconds": round(first.warm_seconds, 4),
        "cold_seconds": round(first.cold_seconds, 4),
        "speedup": round(first.speedup, 2),
        "warm_solves": first.warm_solves,
        "cold_fallbacks": first.cold_fallbacks,
        "replay_wall_seconds": round(first_wall, 4),
        "plans_byte_identical": signatures_match,
        "divergence": divergence,
        "speedup_floor": SPEEDUP_FLOOR,
        "environment": environment_metadata(),
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")
    report(f"stream artifact -> {ARTIFACT_PATH.name}: " + json.dumps(artifact, indent=2))

    # Artifact is on disk — now enforce the acceptance criteria.
    assert signatures_match, "replaying the same journal twice diverged"
    assert divergence["events_compared"] == EVENTS
    assert divergence["exact_plan_matches"] == EVENTS, (
        "warm plans diverged from cold plans: "
        f"{EVENTS - divergence['exact_plan_matches']} events differ"
    )
    assert divergence["max_objective_gap"] <= 1e-9
    assert first.speedup >= SPEEDUP_FLOOR, (
        f"incremental re-planning speedup {first.speedup:.2f}x is below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
