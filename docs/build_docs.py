#!/usr/bin/env python
"""Build the documentation site with the standard library only.

The docs tree is plain Markdown (``docs/*.md``) plus an auto-generated API
reference pulled from the package docstrings.  This builder exists so the
site builds anywhere the library itself runs — no mkdocs/sphinx install
required (environments with mkdocs can use the committed ``mkdocs.yml``
instead; both consume the same Markdown sources).

Usage::

    python docs/build_docs.py            # build into docs/_site
    python docs/build_docs.py --strict   # warnings (broken links, missing
                                         # pages, empty docstrings) fail the build
    python docs/build_docs.py --check-only   # validate without writing HTML

What it does:

* renders each Markdown page (headings, fenced code, lists, tables, inline
  markup) into a small HTML shell with a navigation sidebar;
* generates one API page per subpackage from ``__all__`` and the live
  docstrings (``inspect.signature`` for callables), so the reference can
  never drift from the code;
* checks every intra-doc link: relative links must point at an existing page
  (or repo file) and ``#anchors`` must match a real heading slug.  Broken
  links are warnings; ``--strict`` turns any warning into a non-zero exit.
"""

from __future__ import annotations

import argparse
import html
import inspect
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

DOCS_DIR = Path(__file__).resolve().parent
REPO_ROOT = DOCS_DIR.parent

#: Hand-written pages, in navigation order.
PAGES: List[Tuple[str, str]] = [
    ("index.md", "Overview"),
    ("architecture.md", "Architecture"),
    ("workloads.md", "Workloads & scenario matrix"),
    ("notation.md", "Paper-to-code notation map"),
    ("examples.md", "Examples gallery"),
]

#: Subpackages documented in the generated API reference.
API_MODULES = [
    "repro.uncertainty",
    "repro.claims",
    "repro.core",
    "repro.datasets",
    "repro.workloads",
    "repro.experiments",
    "repro.streaming",
    "repro.store",
    "repro.resilience",
    "repro.service",
]

_warnings: List[str] = []


def warn(message: str) -> None:
    _warnings.append(message)
    print(f"WARNING: {message}", file=sys.stderr)


# --------------------------------------------------------------------------- #
# Minimal Markdown rendering
# --------------------------------------------------------------------------- #
def slugify(text: str) -> str:
    """GitHub-style heading slug: lowercase, spaces to dashes, strip the rest."""
    text = re.sub(r"`", "", text.strip().lower())
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"[\s]+", "-", text).strip("-")


def render_inline(text: str) -> str:
    """Inline markup: code spans, links, bold, italics (code spans protected)."""
    placeholders: List[str] = []

    def stash_code(match: re.Match) -> str:
        placeholders.append(f"<code>{html.escape(match.group(1))}</code>")
        return f"\x00{len(placeholders) - 1}\x00"

    text = re.sub(r"`([^`]+)`", stash_code, text)
    text = html.escape(text, quote=False)
    text = re.sub(
        r"\[([^\]]+)\]\(([^)\s]+)\)", lambda m: f'<a href="{m.group(2)}">{m.group(1)}</a>', text
    )
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    text = re.sub(r"(?<!\*)\*([^*]+)\*(?!\*)", r"<em>\1</em>", text)
    return re.sub(r"\x00(\d+)\x00", lambda m: placeholders[int(m.group(1))], text)


def render_markdown(source: str) -> Tuple[str, List[Tuple[int, str, str]]]:
    """Render Markdown to HTML; returns (html, [(level, slug, title), ...]).

    Covers the subset the docs tree uses: ATX headings, fenced code blocks,
    unordered/ordered lists (single level), pipe tables, blockquotes,
    horizontal rules and paragraphs with inline markup.
    """
    lines = source.split("\n")
    out: List[str] = []
    headings: List[Tuple[int, str, str]] = []
    paragraph: List[str] = []
    list_tag: Optional[str] = None
    index = 0

    def flush_paragraph() -> None:
        if paragraph:
            out.append(f"<p>{render_inline(' '.join(paragraph))}</p>")
            paragraph.clear()

    def close_list() -> None:
        nonlocal list_tag
        if list_tag:
            out.append(f"</{list_tag}>")
            list_tag = None

    while index < len(lines):
        line = lines[index]
        stripped = line.strip()

        fence = re.match(r"^```(\w*)\s*$", stripped)
        if fence:
            flush_paragraph()
            close_list()
            language = fence.group(1)
            block: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].strip().startswith("```"):
                block.append(lines[index])
                index += 1
            index += 1  # skip closing fence
            css = f' class="language-{language}"' if language else ""
            out.append(f"<pre><code{css}>{html.escape(chr(10).join(block))}</code></pre>")
            continue

        heading = re.match(r"^(#{1,6})\s+(.*)$", stripped)
        if heading:
            flush_paragraph()
            close_list()
            level = len(heading.group(1))
            title = heading.group(2).strip()
            slug = slugify(title)
            headings.append((level, slug, title))
            out.append(f'<h{level} id="{slug}">{render_inline(title)}</h{level}>')
            index += 1
            continue

        if stripped.startswith("|") and index + 1 < len(lines) and re.match(
            r"^\|?[\s:|-]+\|[\s:|-]*$", lines[index + 1].strip()
        ):
            flush_paragraph()
            close_list()
            header_cells = [c.strip() for c in stripped.strip("|").split("|")]
            out.append("<table><thead><tr>")
            out.extend(f"<th>{render_inline(cell)}</th>" for cell in header_cells)
            out.append("</tr></thead><tbody>")
            index += 2
            while index < len(lines) and lines[index].strip().startswith("|"):
                cells = [c.strip() for c in lines[index].strip().strip("|").split("|")]
                out.append("<tr>")
                out.extend(f"<td>{render_inline(cell)}</td>" for cell in cells)
                out.append("</tr>")
                index += 1
            out.append("</tbody></table>")
            continue

        bullet = re.match(r"^[-*]\s+(.*)$", stripped)
        ordered = re.match(r"^\d+\.\s+(.*)$", stripped)
        if bullet or ordered:
            flush_paragraph()
            tag = "ul" if bullet else "ol"
            if list_tag != tag:
                close_list()
                out.append(f"<{tag}>")
                list_tag = tag
            item = (bullet or ordered).group(1)
            # Fold indented continuation lines into the item.
            index += 1
            while index < len(lines) and re.match(r"^\s{2,}\S", lines[index]) and not re.match(
                r"^\s*[-*]\s|^\s*\d+\.\s", lines[index]
            ):
                item += " " + lines[index].strip()
                index += 1
            out.append(f"<li>{render_inline(item)}</li>")
            continue

        if stripped.startswith(">"):
            flush_paragraph()
            close_list()
            quote: List[str] = []
            while index < len(lines) and lines[index].strip().startswith(">"):
                quote.append(lines[index].strip().lstrip("> "))
                index += 1
            out.append(f"<blockquote><p>{render_inline(' '.join(quote))}</p></blockquote>")
            continue

        if re.match(r"^(-{3,}|\*{3,})$", stripped):
            flush_paragraph()
            close_list()
            out.append("<hr/>")
            index += 1
            continue

        if not stripped:
            flush_paragraph()
            close_list()
            index += 1
            continue

        paragraph.append(stripped)
        index += 1

    flush_paragraph()
    close_list()
    return "\n".join(out), headings


# --------------------------------------------------------------------------- #
# API reference generation
# --------------------------------------------------------------------------- #
def _signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def iter_public_members(cls):
    """Yield ``(name, doc_target, kind)`` for a class's public members.

    Unwraps classmethod/staticmethod/property down to the function whose
    docstring counts; ``kind`` is ``"property"`` or ``"method"``.  This is
    the single definition of "the public member surface" — both the API
    reference here and the docstring gate (tools/check_docstrings.py) walk
    it, so the two can never enforce different surfaces.
    """
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        kind = "method"
        target = member
        if isinstance(member, (classmethod, staticmethod)):
            target = member.__func__
        elif isinstance(member, property):
            target = member.fget
            kind = "property"
        elif not inspect.isfunction(member):
            continue
        if target is None:
            continue
        yield name, target, kind


def _docstring_block(obj, qualified: str) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        warn(f"api: {qualified} has no docstring")
        return "<p><em>No docstring.</em></p>"
    return f"<pre class=\"docstring\">{html.escape(doc)}</pre>"


def generate_api_page(module_name: str) -> Tuple[str, List[Tuple[int, str, str]]]:
    """One API page: every ``__all__`` export of the module, from live docstrings."""
    import importlib

    module = importlib.import_module(module_name)
    exports = list(getattr(module, "__all__", []))
    parts: List[str] = []
    headings: List[Tuple[int, str, str]] = [(1, slugify(module_name), module_name)]
    parts.append(f'<h1 id="{slugify(module_name)}"><code>{module_name}</code></h1>')
    parts.append(_docstring_block(module, module_name))

    for name in exports:
        obj = getattr(module, name, None)
        if obj is None or inspect.ismodule(obj):
            continue
        qualified = f"{module_name}.{name}"
        slug = slugify(qualified)
        headings.append((2, slug, qualified))
        if inspect.isclass(obj):
            parts.append(
                f'<h2 id="{slug}">class <code>{name}{_signature_of(obj)}</code></h2>'
            )
            parts.append(_docstring_block(obj, qualified))
            for method_name, target, kind in iter_public_members(obj):
                method_slug = slugify(f"{qualified}.{method_name}")
                suffix = "" if kind == "property" else _signature_of(target)
                parts.append(
                    f'<h3 id="{method_slug}"><code>{name}.{method_name}{suffix}</code></h3>'
                )
                parts.append(_docstring_block(target, f"{qualified}.{method_name}"))
        elif callable(obj):
            parts.append(f'<h2 id="{slug}"><code>{name}{_signature_of(obj)}</code></h2>')
            parts.append(_docstring_block(obj, qualified))
        else:
            parts.append(f'<h2 id="{slug}"><code>{name}</code></h2>')
            parts.append(f"<p>Module-level constant: <code>{html.escape(repr(obj)[:200])}</code></p>")
    return "\n".join(parts), headings


# --------------------------------------------------------------------------- #
# Site assembly and link checking
# --------------------------------------------------------------------------- #
_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 0;
       color: #1c1e21; line-height: 1.55; }
.layout { display: flex; min-height: 100vh; }
nav { width: 230px; flex-shrink: 0; background: #f6f8fa; padding: 1.2rem;
      border-right: 1px solid #e1e4e8; }
nav h2 { font-size: 0.8rem; text-transform: uppercase; color: #57606a; }
nav ul { list-style: none; padding-left: 0; }
nav li { margin: 0.3rem 0; }
main { max-width: 860px; padding: 1.5rem 2.5rem; }
pre { background: #f6f8fa; padding: 0.8rem; overflow-x: auto;
      border-radius: 6px; font-size: 0.88rem; }
pre.docstring { white-space: pre-wrap; border-left: 3px solid #d0d7de; }
code { background: #f1f3f5; padding: 0.1em 0.3em; border-radius: 4px;
       font-size: 0.9em; }
pre code { background: none; padding: 0; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #d0d7de; padding: 0.4rem 0.7rem; text-align: left; }
th { background: #f6f8fa; }
blockquote { border-left: 4px solid #d0d7de; margin-left: 0;
             padding-left: 1rem; color: #57606a; }
a { color: #0969da; text-decoration: none; }
a:hover { text-decoration: underline; }
"""


def _nav_html(current: str, api_pages: List[Tuple[str, str]]) -> str:
    def link(target: str, label: str) -> str:
        depth = current.count("/")
        prefix = "../" * depth
        marker = " style=\"font-weight:600\"" if target == current else ""
        return f'<li><a href="{prefix}{target}"{marker}>{label}</a></li>'

    items = [link(name.replace(".md", ".html"), label) for name, label in PAGES]
    api_items = [link(target, label) for target, label in api_pages]
    return (
        "<nav><h2>Guide</h2><ul>"
        + "".join(items)
        + "</ul><h2>API reference</h2><ul>"
        + "".join(api_items)
        + "</ul></nav>"
    )


def _page_html(title: str, body: str, nav: str) -> str:
    return (
        "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\"/>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body><div class=\"layout\">{nav}<main>{body}</main></div></body></html>"
    )


def check_links(
    page: str,
    source: str,
    anchors_by_page: Dict[str, set],
) -> None:
    """Validate every Markdown link on ``page`` (repo files and intra-doc anchors)."""
    for match in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", source):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, anchor = target.partition("#")
        if not path:
            if anchor and anchor not in anchors_by_page.get(page, set()):
                warn(f"{page}: broken same-page anchor '#{anchor}'")
            continue
        resolved = (DOCS_DIR / page).parent / path
        try:
            relative = resolved.resolve().relative_to(DOCS_DIR.resolve())
            doc_key = str(relative)
        except ValueError:
            doc_key = None
        if doc_key is not None and doc_key in anchors_by_page:
            if anchor and anchor not in anchors_by_page[doc_key]:
                warn(f"{page}: broken anchor '{target}' (no heading '{anchor}' in {doc_key})")
            continue
        # Not a doc page: accept links to real files elsewhere in the repo.
        if resolved.resolve().exists():
            continue
        warn(f"{page}: broken link '{target}'")


def build(out_dir: Path, check_only: bool = False) -> int:
    """Build (or just validate) the site; returns the number of warnings."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    _warnings.clear()

    sources: Dict[str, str] = {}
    rendered: Dict[str, Tuple[str, List[Tuple[int, str, str]]]] = {}
    for name, _label in PAGES:
        path = DOCS_DIR / name
        if not path.exists():
            warn(f"missing page listed in navigation: {name}")
            continue
        sources[name] = path.read_text()
        rendered[name] = render_markdown(sources[name])

    api_pages: List[Tuple[str, str]] = []
    for module_name in API_MODULES:
        key = f"api/{module_name.replace('.', '_')}.md"  # logical key for links
        body, headings = generate_api_page(module_name)
        rendered[key] = (body, headings)
        api_pages.append((key.replace(".md", ".html"), module_name))

    anchors_by_page = {
        name: {slug for _level, slug, _title in headings}
        for name, (_body, headings) in rendered.items()
    }
    for name, source in sources.items():
        check_links(name, source, anchors_by_page)

    if not check_only:
        known_pages = set(rendered)

        def _htmlize_links(match: re.Match) -> str:
            target = match.group(1)
            path, _, anchor = target.partition("#")
            if path in known_pages:
                suffix = f"#{anchor}" if anchor else ""
                return f'href="{path[:-3]}.html{suffix}"'
            return match.group(0)

        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "api").mkdir(exist_ok=True)
        for name, (body, headings) in rendered.items():
            title = headings[0][2] if headings else name
            nav = _nav_html(name.replace(".md", ".html"), api_pages)
            # Intra-doc links are authored against the .md sources (so they
            # work on code hosts too); point them at the built pages here.
            body = re.sub(r'href="([^"]+\.md(?:#[^"]*)?)"', _htmlize_links, body)
            target = out_dir / name.replace(".md", ".html")
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(_page_html(title, body, nav))
        print(f"built {len(rendered)} pages into {out_dir}")
    return len(_warnings)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=str(DOCS_DIR / "_site"), help="output directory")
    parser.add_argument(
        "--strict", action="store_true", help="treat warnings (broken links, missing docstrings) as errors"
    )
    parser.add_argument(
        "--check-only", action="store_true", help="validate pages and links without writing HTML"
    )
    args = parser.parse_args(argv)
    warning_count = build(Path(args.out), check_only=args.check_only)
    if warning_count:
        print(f"{warning_count} warning(s)", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
